"""Process-parallel sweep runner for independent simulation points.

Every headline experiment in the paper -- TPOT (Figure 12), LBR
(Figure 13), queue-depth sensitivity (Section V-A), the VBA design space
(Section IV-B) -- is a *sweep*: many independent simulation or model
evaluations over batch sizes, queue depths, or controller configurations.
This module runs such sweeps across a ``concurrent.futures``
process pool and reports aggregate statistics, including trace-cache
hit/miss counters from :mod:`repro.trace_cache`.

Sweep points may be load-then-drain measurements *or* arrival-driven
workloads: a workload point is a picklable
:class:`~repro.workloads.scenarios.ScenarioSpec` whose schedule is
recompiled deterministically inside the worker (seeded arrival
processes), so both families shard identically and ``workers=1`` stays
bit-identical to any parallel run.

Guarantees
----------
*Deterministic ordering.*  ``run_sweep`` returns one value per input
point, in input order, regardless of worker count or completion order.

*Serial equivalence.*  ``workers=1`` (the default) never creates a pool:
points run in-process, in order, through exactly the same code path as a
hand-written loop, so single-worker results are bit-identical to the
pre-sweep serial helpers.

*Graceful fallback.*  If the pool cannot run the sweep -- the callable
or a point fails an upfront pickling probe, process creation fails, a
result will not pickle back, or a worker dies -- the sweep transparently
runs serially in-process and the stats record ``parallel=False``.
Exceptions raised by the swept function itself are *not* swallowed; they
propagate to the caller.

*Cache warmth survives the pool.*  Trace-cache entries derived inside
workers are journaled, shipped back, and installed into the parent's
cache, so a repeated sweep hits the cache even though each ``run_sweep``
call builds (and tears down) a fresh pool of forked workers.

Two levels of parallelism are offered:

* :func:`run_sweep` -- shard independent sweep *points* across workers
  (one simulation per point);
* :func:`run_system_until_idle` -- shard the per-channel *controllers* of
  one multi-channel memory system across workers (the controllers are
  independent between arrival points; the engine's
  ``advance_to``/``next_event_ns`` protocol is the cut point).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.trace_cache import (
    CacheStats,
    global_trace_cache,
    reset_trace_cache,
    trace_cache_stats,
)

__all__ = [
    "CacheStats",
    "SweepResult",
    "SweepStats",
    "global_trace_cache",
    "reset_trace_cache",
    "resolve_workers",
    "run_sweep",
    "run_system_until_idle",
    "trace_cache_stats",
]

#: Pool-infrastructure failures observable while gathering results: a
#: result that cannot be pickled back, or a worker dying.  Kept narrow so
#: errors raised *by the swept function* are not mistaken for pool
#: failures; unpicklable functions/points are screened upfront by
#: :func:`_picklable`, and ``OSError`` is only treated as a pool failure
#: around process creation/submission (see :func:`_run_pool`).
_POOL_FAILURES = (pickle.PicklingError, BrokenProcessPool)


def _picklable(*objects: Any) -> bool:
    """Whether every object survives pickling (pool-transport probe)."""
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _seed_worker_cache(entries: list) -> None:
    """Pool-worker initializer: adopt the parent's trace-cache entries.

    Under the ``fork`` start method this is a harmless no-op (the worker
    already inherited the entries); under ``spawn``/``forkserver`` it is
    what makes parent-side warmth visible to workers at all.
    """
    global_trace_cache().install(entries)


def _run_pool(tasks: List[Tuple[Any, ...]], workers: int,
              seed_cache: bool) -> Optional[List[Any]]:
    """Run ``(fn, *args)`` tasks on a process pool; ``None`` on pool failure.

    Exceptions raised by the tasks themselves propagate unchanged; only
    pool-infrastructure failures (process creation forbidden, worker
    death, unpicklable results) return ``None`` so the caller can fall
    back to serial execution.
    """
    initializer = initargs = None
    if seed_cache:
        initializer = _seed_worker_cache
        initargs = (global_trace_cache().export_entries(),)
    try:
        pool = ProcessPoolExecutor(max_workers=workers,
                                   initializer=initializer,
                                   initargs=initargs or ())
    except OSError:
        return None
    with pool:
        # Submission may spawn processes, so OSError here is a pool
        # failure; once the futures exist, an OSError can only come from
        # the task itself and must propagate to the caller.
        try:
            futures = [pool.submit(*task) for task in tasks]
        except OSError:
            return None
        try:
            return [future.result() for future in futures]
        except _POOL_FAILURES:
            return None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` or any value < 1 means "one worker per available CPU"
    (``os.cpu_count()``); positive values are taken as-is.
    """
    if workers is None or workers < 1:
        return os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class SweepStats:
    """Aggregate statistics of one :func:`run_sweep` call.

    ``workers`` is the worker count actually used (after clamping to the
    point count); ``parallel`` records whether a process pool really ran
    -- it is ``False`` for ``workers=1`` and for pools that fell back to
    serial execution.  ``cache`` aggregates the trace-cache hits/misses
    accrued while running the points, summed across worker processes.
    ``evaluations`` sums the scheduler-evaluation counters of swept values
    that expose one (a :class:`~repro.sim.stats.SimulationResult` or a
    mapping with an ``"evaluations"`` key); it is 0 for sweeps whose
    points return bare numbers.
    """

    points: int
    workers: int
    parallel: bool
    wall_s: float
    cache: CacheStats = CacheStats()
    evaluations: int = 0

    @property
    def points_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.points / self.wall_s

    @property
    def points_per_s_per_worker(self) -> float:
        """Per-worker throughput (the ``bench-smoke`` headline number)."""
        if self.workers <= 0:
            return 0.0
        return self.points_per_s / self.workers


@dataclass(frozen=True)
class SweepResult:
    """Values of a sweep, in input-point order, plus run statistics."""

    values: Tuple[Any, ...]
    stats: SweepStats

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]


def _evaluations_of(value: Any) -> int:
    """Scheduler evaluations carried by one swept value (0 if absent)."""
    if isinstance(value, Mapping):
        count = value.get("evaluations")
    else:
        count = getattr(value, "evaluations", None)
    if isinstance(count, bool) or not isinstance(count, (int, float)):
        return 0
    return int(count)


def _apply(fn: Callable[..., Any], point: Any) -> Any:
    """Call ``fn`` on one sweep point.

    Mappings expand to keyword arguments, tuples to positional arguments,
    and anything else is passed as the single positional argument -- which
    is how spec-object points travel: an arrival-driven workload point is
    a frozen :class:`~repro.workloads.scenarios.ScenarioSpec` (not a
    closure), handed whole to ``fn`` so the worker process recompiles the
    schedule from the spec's seed.
    """
    if isinstance(point, Mapping):
        return fn(**point)
    if isinstance(point, tuple):
        return fn(*point)
    return fn(point)


def _run_point(fn: Callable[..., Any], point: Any) -> Tuple[Any, int, int, list]:
    """Worker entry point: run one point, report cache deltas and entries.

    Runs in the worker process (or inline for serial sweeps).  The
    hit/miss deltas let the parent aggregate trace-cache traffic from
    workers whose counters it cannot see; the journaled entries let it
    adopt warmth derived in a worker before the pool is torn down, so a
    repeat sweep hits the cache even though it forks fresh workers.
    """
    cache = global_trace_cache()
    before = cache.stats()
    cache.start_journal()
    try:
        value = _apply(fn, point)
    finally:
        entries = cache.take_journal()
    delta = cache.stats().delta(before)
    return value, delta.hits, delta.misses, entries


def _run_serial(fn: Callable[..., Any],
                points: Sequence[Any]) -> Tuple[List[Any], CacheStats]:
    values: List[Any] = []
    cache = CacheStats()
    for point in points:
        value, hits, misses, _ = _run_point(fn, point)
        values.append(value)
        cache = cache.merge(CacheStats(hits=hits, misses=misses))
    return values, cache


def run_sweep(
    fn: Callable[..., Any],
    points: Sequence[Any],
    workers: int = 1,
) -> SweepResult:
    """Evaluate ``fn`` on every point of a sweep, optionally in parallel.

    Parameters
    ----------
    fn:
        The function evaluated per point.  For ``workers > 1`` it must be
        picklable (a module-level function); unpicklable callables fall
        back to serial execution rather than failing.
    points:
        Sweep points, applied per :func:`_apply` (dict -> kwargs,
        tuple -> args, scalar -> single argument).
    workers:
        Maximum concurrent worker processes.  ``1`` (default) runs
        serially in-process; values < 1 or ``None`` mean one worker per
        CPU.  The effective count never exceeds ``len(points)``.

    Returns
    -------
    SweepResult
        ``values`` in input order plus :class:`SweepStats` (wall time,
        effective workers, aggregated trace-cache counters).
    """
    points = list(points)
    workers = min(resolve_workers(workers), max(1, len(points)))
    if workers > 1 and not _picklable(fn, points):
        # The pool cannot transport this sweep (e.g. a lambda or closure);
        # run it serially rather than failing.
        workers = 1
    start = time.perf_counter()
    parallel = False
    outcomes = None
    if workers > 1 and len(points) > 1:
        outcomes = _run_pool([(_run_point, fn, point) for point in points],
                             workers, seed_cache=True)
    if outcomes is None:
        # Serial path: workers=1, a single point, or a pool-infrastructure
        # failure (process creation forbidden, dead worker, unpicklable
        # result) -- never an error from the swept function itself.
        values, cache = _run_serial(fn, points)
        workers = 1
    else:
        parallel = True
        values = [value for value, _, _, _ in outcomes]
        cache = CacheStats()
        for _, hits, misses, entries in outcomes:
            cache = cache.merge(CacheStats(hits=hits, misses=misses))
            global_trace_cache().install(entries)
    wall_s = time.perf_counter() - start
    return SweepResult(
        values=tuple(values),
        stats=SweepStats(points=len(points), workers=workers,
                         parallel=parallel, wall_s=wall_s, cache=cache,
                         evaluations=sum(_evaluations_of(v) for v in values)),
    )


# --------------------------------------------------------- channel sharding

def _drain_controller(controller: Any, max_ns: Optional[int],
                      event_driven: bool) -> Tuple[Any, int]:
    """Worker entry point: drain one channel controller to idle."""
    if max_ns is None:
        end = controller.run_until_idle(event_driven=event_driven)
    else:
        end = controller.run_until_idle(max_ns, event_driven=event_driven)
    return controller, end


def run_system_until_idle(
    system: Any,
    workers: int = 1,
    max_ns: Optional[int] = None,
    event_driven: bool = True,
) -> int:
    """Drain a multi-channel memory system, optionally sharding channels.

    ``system`` is a :class:`~repro.sim.memory_system.ConventionalMemorySystem`
    or :class:`~repro.sim.memory_system.RoMeMemorySystem` (anything with a
    ``controllers`` list whose members implement ``run_until_idle``).
    Channels are independent once their requests are enqueued, so each
    worker drains a subset and the drained controllers -- stats, energy
    counters and all -- replace the originals in channel order.

    ``workers=1`` calls ``system.run_until_idle`` directly and is
    bit-identical to the serial path; ``max_ns=None`` keeps each system's
    own drain deadline.  Pool failures fall back to the serial path.
    Returns the simulation end time (max over channels).
    """
    workers = min(resolve_workers(workers), max(1, len(system.controllers)))
    outcomes = None
    if workers > 1 and len(system.controllers) > 1 \
            and _picklable(system.controllers):
        outcomes = _run_pool(
            [(_drain_controller, controller, max_ns, event_driven)
             for controller in system.controllers],
            workers, seed_cache=False,
        )
    if outcomes is None:
        if max_ns is None:
            return system.run_until_idle(event_driven=event_driven)
        return system.run_until_idle(max_ns, event_driven=event_driven)
    system.controllers = [controller for controller, _ in outcomes]
    return max(end for _, end in outcomes)
