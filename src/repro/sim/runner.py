"""High-level measurement helpers used by tests, examples, and benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.controller.mc import ControllerConfig
from repro.controller.request import RequestKind
from repro.core.controller import RoMeControllerConfig, RoMeMemoryController
from repro.core.interface import RowRequestKind, requests_for_transfer
from repro.core.timing import ROME_TIMING
from repro.core.virtual_bank import VirtualBankConfig, paper_vba_config
from repro.dram.timing import TimingParameters
from repro.sim.memory_system import (
    ConventionalMemorySystem,
    MemorySystemConfig,
    RoMeMemorySystem,
)
from repro.sim.stats import SimulationResult
from repro.sim.traces import streaming_trace


def measure_conventional_streaming(
    total_bytes: int = 512 * 1024,
    num_channels: int = 1,
    read_queue_depth: int = 64,
    page_policy: str = "open",
    request_bytes: int = 4096,
    enable_refresh: bool = False,
    timing: Optional[TimingParameters] = None,
) -> SimulationResult:
    """Stream ``total_bytes`` of reads through the conventional system."""
    config = MemorySystemConfig(
        num_channels=num_channels,
        controller=ControllerConfig(
            timing=timing or TimingParameters(),
            read_queue_depth=read_queue_depth,
            write_queue_depth=read_queue_depth,
            page_policy=page_policy,
            enable_refresh=enable_refresh,
        ),
    )
    system = ConventionalMemorySystem(config)
    system.enqueue_many(
        streaming_trace(total_bytes, request_bytes=request_bytes,
                        kind=RequestKind.READ)
    )
    system.run_until_idle()
    return system.result(name=f"hbm4-q{read_queue_depth}")


def measure_rome_streaming(
    total_bytes: int = 512 * 1024,
    num_channels: int = 1,
    request_queue_depth: int = 4,
    vba: Optional[VirtualBankConfig] = None,
    enable_refresh: bool = False,
    write_fraction: float = 0.0,
) -> SimulationResult:
    """Stream ``total_bytes`` through the RoMe system as row requests."""
    vba = vba or paper_vba_config()
    config = MemorySystemConfig(
        num_channels=num_channels,
        rome_controller=RoMeControllerConfig(
            timing=ROME_TIMING,
            vba=vba,
            request_queue_depth=request_queue_depth,
            enable_refresh=enable_refresh,
        ),
    )
    system = RoMeMemorySystem(config)
    row_bytes = vba.effective_row_bytes
    read_bytes = int(total_bytes * (1.0 - write_fraction))
    write_bytes = total_bytes - read_bytes
    requests = requests_for_transfer(
        read_bytes,
        kind=RowRequestKind.RD_ROW,
        effective_row_bytes=row_bytes,
        num_channels=num_channels,
        vbas_per_channel=vba.vbas_per_channel_per_sid,
    )
    if write_bytes:
        requests += requests_for_transfer(
            write_bytes,
            kind=RowRequestKind.WR_ROW,
            effective_row_bytes=row_bytes,
            num_channels=num_channels,
            vbas_per_channel=vba.vbas_per_channel_per_sid,
            start_row=1 << 10,
        )
    system.enqueue_many(requests)
    system.run_until_idle()
    return system.result(name=f"rome-q{request_queue_depth}")


def queue_depth_sweep(
    depths: List[int],
    system: str = "rome",
    total_bytes: int = 256 * 1024,
) -> Dict[int, float]:
    """Bandwidth utilization versus request-queue depth (Section V-A).

    ``system`` is ``"rome"`` or ``"hbm4"``.  Returns ``{depth: utilization}``.
    """
    results: Dict[int, float] = {}
    for depth in depths:
        if system == "rome":
            result = measure_rome_streaming(
                total_bytes=total_bytes, request_queue_depth=depth
            )
        elif system == "hbm4":
            result = measure_conventional_streaming(
                total_bytes=total_bytes, read_queue_depth=depth
            )
        else:
            raise ValueError("system must be 'rome' or 'hbm4'")
        results[depth] = result.utilization
    return results
