"""High-level measurement helpers used by tests, examples, and benchmarks.

Each helper builds a memory system, enqueues a trace, drains it, and
returns a :class:`~repro.sim.stats.SimulationResult`.  All of them are
deterministic: given the same arguments they simulate the same cycles and
return the same numbers, which is what lets the sweep runner
(:mod:`repro.sim.sweep`) shard them across processes without changing
results.

Worker semantics
----------------
Helpers that accept ``workers`` treat ``1`` (the default) as "exactly the
serial code path" -- no process pool is created and results are
bit-identical to pre-sweep versions of this module.  ``workers > 1``
parallelizes at the natural grain:

* the streaming measurers shard their per-channel controllers
  (:func:`repro.sim.sweep.run_system_until_idle`);
* the sweeps shard independent simulation points
  (:func:`repro.sim.sweep.run_sweep`).

Trace setup (address decode, transfer striping) is memoized process-wide
by :mod:`repro.trace_cache`, so repeated sweep points skip it entirely;
:func:`queue_depth_sweep_result` exposes the hit/miss counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.controller.mc import ControllerConfig
from repro.controller.request import RequestKind
from repro.core.controller import RoMeControllerConfig
from repro.core.interface import RowRequestKind, requests_for_transfer
from repro.core.timing import ROME_TIMING, derive_rome_timing
from repro.core.virtual_bank import (
    VBA_DESIGN_SPACE,
    VirtualBankConfig,
    paper_vba_config,
)
from repro.dram.timing import HBM4_TIMING, TimingParameters
from repro.sim.memory_system import (
    ConventionalMemorySystem,
    MemorySystemConfig,
    RoMeMemorySystem,
)
from repro.sim.stats import SimulationResult
from repro.sim.sweep import SweepResult, run_sweep, run_system_until_idle
from repro.sim.traces import streaming_trace


def measure_conventional_streaming(
    total_bytes: int = 512 * 1024,
    num_channels: int = 1,
    read_queue_depth: int = 64,
    page_policy: str = "open",
    request_bytes: int = 4096,
    enable_refresh: bool = False,
    timing: Optional[TimingParameters] = None,
    workers: int = 1,
) -> SimulationResult:
    """Stream ``total_bytes`` of reads through the conventional system.

    ``workers`` shards the per-channel controllers across processes once
    the trace is enqueued; with one channel or ``workers=1`` the drain is
    the plain serial path.
    """
    config = MemorySystemConfig(
        num_channels=num_channels,
        controller=ControllerConfig(
            timing=timing or TimingParameters(),
            read_queue_depth=read_queue_depth,
            write_queue_depth=read_queue_depth,
            page_policy=page_policy,
            enable_refresh=enable_refresh,
        ),
    )
    system = ConventionalMemorySystem(config)
    system.enqueue_many(
        streaming_trace(total_bytes, request_bytes=request_bytes,
                        kind=RequestKind.READ)
    )
    run_system_until_idle(system, workers=workers)
    return system.result(name=f"hbm4-q{read_queue_depth}")


def measure_rome_streaming(
    total_bytes: int = 512 * 1024,
    num_channels: int = 1,
    request_queue_depth: int = 4,
    vba: Optional[VirtualBankConfig] = None,
    enable_refresh: bool = False,
    write_fraction: float = 0.0,
    workers: int = 1,
) -> SimulationResult:
    """Stream ``total_bytes`` through the RoMe system as row requests.

    ``workers`` shards the per-channel controllers as in
    :func:`measure_conventional_streaming`.
    """
    vba = vba or paper_vba_config()
    config = MemorySystemConfig(
        num_channels=num_channels,
        rome_controller=RoMeControllerConfig(
            timing=ROME_TIMING,
            vba=vba,
            request_queue_depth=request_queue_depth,
            enable_refresh=enable_refresh,
        ),
    )
    system = RoMeMemorySystem(config)
    row_bytes = vba.effective_row_bytes
    read_bytes = int(total_bytes * (1.0 - write_fraction))
    write_bytes = total_bytes - read_bytes
    requests = requests_for_transfer(
        read_bytes,
        kind=RowRequestKind.RD_ROW,
        effective_row_bytes=row_bytes,
        num_channels=num_channels,
        vbas_per_channel=vba.vbas_per_channel_per_sid,
    )
    if write_bytes:
        requests += requests_for_transfer(
            write_bytes,
            kind=RowRequestKind.WR_ROW,
            effective_row_bytes=row_bytes,
            num_channels=num_channels,
            vbas_per_channel=vba.vbas_per_channel_per_sid,
            start_row=1 << 10,
        )
    system.enqueue_many(requests)
    run_system_until_idle(system, workers=workers)
    return system.result(name=f"rome-q{request_queue_depth}")


def streaming_point(system: str, total_bytes: int) -> SimulationResult:
    """One streaming-bandwidth measurement (picklable sweep point).

    ``system`` is ``"rome"`` or ``"hbm4"``; used by ``rome-repro
    bandwidth --workers N`` to run the two systems concurrently.
    """
    if system == "rome":
        return measure_rome_streaming(total_bytes=total_bytes)
    if system == "hbm4":
        return measure_conventional_streaming(total_bytes=total_bytes)
    raise ValueError("system must be 'rome' or 'hbm4'")


def queue_depth_point(system: str, depth: int, total_bytes: int) -> float:
    """Bandwidth utilization of one (system, queue depth) sweep point."""
    if system == "rome":
        result = measure_rome_streaming(
            total_bytes=total_bytes, request_queue_depth=depth
        )
    elif system == "hbm4":
        result = measure_conventional_streaming(
            total_bytes=total_bytes, read_queue_depth=depth
        )
    else:
        raise ValueError("system must be 'rome' or 'hbm4'")
    return result.utilization


def queue_depth_sweep_result(
    depths: List[int],
    system: str = "rome",
    total_bytes: int = 256 * 1024,
    workers: int = 1,
) -> SweepResult:
    """Queue-depth sweep with full :class:`~repro.sim.sweep.SweepStats`.

    Returns utilizations in ``depths`` order plus wall time, worker count,
    and trace-cache hit/miss counters for the run.
    """
    return run_sweep(
        queue_depth_point,
        [(system, depth, total_bytes) for depth in depths],
        workers=workers,
    )


def queue_depth_sweep(
    depths: List[int],
    system: str = "rome",
    total_bytes: int = 256 * 1024,
    workers: int = 1,
) -> Dict[int, float]:
    """Bandwidth utilization versus request-queue depth (Section V-A).

    ``system`` is ``"rome"`` or ``"hbm4"``.  Returns ``{depth:
    utilization}`` in ``depths`` order.  Each depth is an independent
    simulation; ``workers`` shards them across processes with identical
    results (``workers=1`` runs the exact serial loop).
    """
    sweep = queue_depth_sweep_result(depths, system=system,
                                     total_bytes=total_bytes, workers=workers)
    return dict(zip(depths, sweep.values))


def measure_vba_design_point(
    vba_index: int, total_bytes: int = 96 * 4096
) -> SimulationResult:
    """Stream a drain through one point of the six-point VBA design space.

    ``vba_index`` indexes :data:`repro.core.virtual_bank.VBA_DESIGN_SPACE`
    (an index rather than the config object keeps sweep points trivially
    picklable).  Section IV-B: every point should deliver near-identical
    streaming bandwidth; they differ in DRAM-die area.
    """
    vba = VBA_DESIGN_SPACE[vba_index]
    timing = derive_rome_timing(HBM4_TIMING, vba)
    # Design points with smaller effective rows (1-2 KB) finish a row
    # command faster than tRD_row/tR2RS = 2 commands, so they need one or
    # two extra in-flight bank FSMs to stay at full bandwidth; the adopted
    # 4 KB point needs only the paper's two.
    data_fsms = max(2, -(-timing.tRD_row // timing.tR2RS) + 1)
    system = RoMeMemorySystem(
        MemorySystemConfig(
            num_channels=1,
            rome_controller=RoMeControllerConfig(
                timing=timing, vba=vba, num_stack_ids=1, enable_refresh=False,
                max_data_fsms=data_fsms,
            ),
        )
    )
    requests = requests_for_transfer(
        total_bytes,
        kind=RowRequestKind.RD_ROW,
        effective_row_bytes=vba.effective_row_bytes,
        num_channels=1,
        vbas_per_channel=vba.vbas_per_channel_per_sid,
    )
    system.enqueue_many(requests)
    system.run_until_idle()
    return system.result()


def vba_design_space_sweep(
    total_bytes: int = 96 * 4096, workers: int = 1
) -> List[Dict[str, Any]]:
    """Simulated utilization rows for the whole VBA design space.

    One row per :data:`~repro.core.virtual_bank.VBA_DESIGN_SPACE` point,
    in design-space order; ``workers`` shards the six simulations.
    """
    sweep = run_sweep(
        measure_vba_design_point,
        [(index, total_bytes) for index in range(len(VBA_DESIGN_SPACE))],
        workers=workers,
    )
    rows = []
    for vba, result in zip(VBA_DESIGN_SPACE, sweep.values):
        rows.append(
            {
                "bank_merge": vba.bank_merge.value,
                "pc_merge": vba.pc_merge.value,
                "effective_row_bytes": vba.effective_row_bytes,
                "utilization": result.utilization,
                "area_overhead": vba.area_overhead_fraction,
                "needs_dram_changes": vba.requires_dram_core_modification,
            }
        )
    return rows
