"""A small lockstep simulation engine.

The per-channel controllers are independent cycle-level simulators; the
engine advances a set of them in lockstep and supports early termination on a
predicate.  It exists mostly for multi-controller experiments where channels
receive requests over time (e.g. continuous batching studies) rather than the
load-then-drain pattern the memory-system wrappers use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence


class Tickable(Protocol):
    """Anything that advances one nanosecond at a time."""

    now: int

    def tick(self) -> None:  # pragma: no cover - protocol definition
        ...


@dataclass
class Simulation:
    """Advance a set of tickable controllers in lockstep."""

    controllers: Sequence[Tickable]
    #: Called once per nanosecond before the controllers tick; useful for
    #: injecting requests over time.
    on_cycle: Optional[Callable[[int], None]] = None
    now: int = 0

    def step(self) -> None:
        if self.on_cycle is not None:
            self.on_cycle(self.now)
        for controller in self.controllers:
            controller.tick()
        self.now += 1

    def run_for(self, duration_ns: int) -> int:
        end = self.now + duration_ns
        while self.now < end:
            self.step()
        return self.now

    def run_until(self, predicate: Callable[[], bool], max_ns: int = 10_000_000) -> int:
        """Step until ``predicate()`` is true; raises if ``max_ns`` elapses."""
        while not predicate():
            if self.now >= max_ns:
                raise RuntimeError(f"simulation did not converge within {max_ns} ns")
            self.step()
        return self.now
