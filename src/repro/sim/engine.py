"""An event-driven multi-controller simulation engine.

The per-channel controllers are independent cycle-level simulators.  The
engine advances a set of them through simulated time and supports early
termination on a predicate.  It exists mostly for multi-controller
experiments where channels receive requests over time (e.g. continuous
batching studies) rather than the load-then-drain pattern the memory-system
wrappers use.

Execution model
---------------
By default the engine is *event-driven*: controllers expose
``advance_to(target_ns)`` and ``next_event_ns()`` (see
:class:`EventDriven`), and the engine jumps from one globally interesting
timestamp to the next -- the minimum over every controller's next event and
the next scheduled arrival -- instead of ticking every nanosecond.  Both
memory controllers in this tree implement the protocol cycle-exactly, so
results are identical to lockstep ticking, only orders of magnitude faster
on sparse timelines.

Request arrivals over time are modelled with :meth:`Simulation.at`, which
schedules a callback at an absolute timestamp; the engine guarantees the
callback runs before any controller evaluates that instant.

Two legacy escape hatches force per-nanosecond lockstep stepping: passing an
``on_cycle`` hook (which by contract must run every nanosecond), or driving
controllers that only implement ``tick()``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol, Sequence, Tuple


class Tickable(Protocol):
    """Anything that advances one nanosecond at a time."""

    now: int

    def tick(self) -> None:  # pragma: no cover - protocol definition
        ...


class EventDriven(Protocol):
    """A tickable that can also jump across event-free spans."""

    now: int

    def tick(self) -> None:  # pragma: no cover - protocol definition
        ...

    def advance_to(self, target_ns: int) -> None:  # pragma: no cover
        ...

    def next_event_ns(self) -> Optional[int]:  # pragma: no cover
        ...


@dataclass
class Simulation:
    """Advance a set of controllers through simulated time.

    Parameters
    ----------
    controllers:
        The per-channel controllers to drive.  If every one implements
        the :class:`EventDriven` protocol the engine time-skips;
        otherwise it falls back to 1-ns lockstep.
    on_cycle:
        Optional per-nanosecond hook (forces lockstep); prefer
        :meth:`at` for injecting requests at known arrival times.
    now:
        Current simulated time in nanoseconds.

    Determinism: given the same controllers, schedule, and call
    sequence, a ``Simulation`` visits the same timestamps and produces
    the same controller state whether it time-skips or ticks -- the
    controllers' event protocol is cycle-exact (proven against the
    frozen seed oracle in ``tests/sim/test_event_equivalence.py``).
    """

    controllers: Sequence[Tickable]
    #: Called once per nanosecond before the controllers tick.  Setting this
    #: forces legacy lockstep stepping; prefer :meth:`at` for injecting
    #: requests at known arrival times.
    on_cycle: Optional[Callable[[int], None]] = None
    now: int = 0
    _schedule: List[Tuple[int, int, Callable[[int], None], object]] = field(
        default_factory=list, repr=False
    )
    _schedule_seq: int = field(default=0, repr=False)

    # ------------------------------------------------------------- arrivals

    def at(self, time_ns: int, callback: Callable[[int], None],
           payload: object = None) -> None:
        """Schedule ``callback(now)`` at absolute time ``time_ns``.

        Callbacks run before controllers evaluate that instant, so enqueuing
        requests from one behaves exactly like the legacy per-ns ``on_cycle``
        injection.

        ``payload`` is an optional *picklable* description of the arrival
        (callbacks themselves are closures and cannot be pickled); a
        checkpoint stores the ``(time_ns, payload)`` pairs returned by
        :meth:`pending_arrivals` and the resuming side rebuilds the
        callbacks from them.

        Edge contract (the workload driver relies on both halves, in event
        and lockstep mode alike):

        * several callbacks registered for the *same* nanosecond fire in
          registration order;
        * a callback registered at the current instant -- or in the past --
          fires *immediately*, synchronously, before :meth:`at` returns.
          It can therefore never be silently deferred past its due time
          (a schedule whose first record is at t=0 enqueues its requests
          at registration, ahead of the first advance).
        """
        if time_ns <= self.now:
            callback(self.now)
            return
        heapq.heappush(
            self._schedule, (time_ns, self._schedule_seq, callback, payload)
        )
        self._schedule_seq += 1

    def pending_arrivals(self) -> Tuple[Tuple[int, object], ...]:
        """``(time_ns, payload)`` of every not-yet-fired arrival, in fire
        order -- the checkpointable view of the schedule.

        Raises ``ValueError`` if any pending arrival was registered without
        a payload: such an arrival could not be rebuilt on restore, and
        silently dropping it would break bit-identity.
        """
        ordered = sorted(self._schedule)
        for time_ns, _, _, payload in ordered:
            if payload is None:
                raise ValueError(
                    f"pending arrival at {time_ns} ns has no payload; "
                    f"register arrivals with Simulation.at(..., payload=...) "
                    f"to make the schedule checkpointable"
                )
        return tuple((time_ns, payload) for time_ns, _, _, payload in ordered)

    def _fire_due(self) -> None:
        while self._schedule and self._schedule[0][0] <= self.now:
            _, _, callback, _ = heapq.heappop(self._schedule)
            callback(self.now)

    def next_arrival_ns(self) -> Optional[int]:
        """Earliest scheduled arrival still pending, or ``None``.

        This is the *train horizon* the engine hands to the controllers:
        event-driven advances never cross it, and the controllers' burst
        trains truncate at the ``advance_to`` target, so a request injected
        via :meth:`at` is enqueued before any controller evaluates its
        arrival instant -- even when a controller was mid-burst when the
        arrival came due.
        """
        return self._schedule[0][0] if self._schedule else None

    # ------------------------------------------------------------- stepping

    def _lockstep_required(self) -> bool:
        if self.on_cycle is not None:
            return True
        return any(
            not (hasattr(c, "advance_to") and hasattr(c, "next_event_ns"))
            for c in self.controllers
        )

    def step(self) -> None:
        """Advance every controller by exactly one nanosecond (lockstep)."""
        self._fire_due()
        if self.on_cycle is not None:
            self.on_cycle(self.now)
        for controller in self.controllers:
            controller.tick()
        self.now += 1

    def _next_global_event(self, default: int) -> int:
        candidates = [
            event
            for controller in self.controllers
            if (event := controller.next_event_ns()) is not None
        ]
        if self._schedule:
            candidates.append(self._schedule[0][0])
        return min(candidates) if candidates else default

    # ----------------------------------------------------------------- runs

    def run_for(self, duration_ns: int) -> int:
        """Advance all controllers by ``duration_ns``; returns the end time.

        Event-driven advances are bounded by :meth:`next_arrival_ns` (the
        train horizon): a controller may jump -- or burst-train -- freely up
        to the next scheduled arrival but never across it, so arrivals land
        cycle-exactly before any controller evaluates that instant.
        """
        end = self.now + duration_ns
        if self._lockstep_required():
            while self.now < end:
                self.step()
            return self.now
        while self.now < end:
            self._fire_due()
            stop = end
            arrival = self.next_arrival_ns()
            if arrival is not None and arrival < stop:
                stop = arrival
            for controller in self.controllers:
                controller.advance_to(stop)
            self.now = stop
        return self.now

    def run_until(self, predicate: Callable[[], bool], max_ns: int = 10_000_000) -> int:
        """Advance until ``predicate()`` is true; raises if ``max_ns`` elapses.

        In event-driven mode the predicate is evaluated after every global
        event (any controller acting, or a scheduled arrival), which is the
        only granularity at which it can change.
        """
        if self._lockstep_required():
            while not predicate():
                if self.now >= max_ns:
                    raise RuntimeError(
                        f"simulation did not converge within {max_ns} ns"
                    )
                self.step()
            return self.now
        while not predicate():
            if self.now >= max_ns:
                raise RuntimeError(f"simulation did not converge within {max_ns} ns")
            self._fire_due()
            # One instant of work for every controller ...
            for controller in self.controllers:
                controller.advance_to(self.now + 1)
            self.now += 1
            if predicate():
                break
            # ... then jump to the next globally interesting timestamp.
            target = self._next_global_event(default=max_ns)
            target = max(self.now, min(target, max_ns))
            for controller in self.controllers:
                controller.advance_to(target)
            self.now = target
        return self.now
