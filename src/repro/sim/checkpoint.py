"""Versioned controller checkpoints for fault-tolerant long horizons.

A long simulation -- a diurnal trace replay, a rate search where every
bisection step re-ramps from cold -- is a single serial process, and
before this module a crash lost all of its progress.  A
:class:`Checkpoint` captures the *complete* machine state of a controller
(or any picklable simulation state bundle) at one instant:

* the request queues and backlogs, with request-object identity intact
  (everything is pickled as one object graph, so a request referenced
  from both a queue and an issued-transfer record stays one object);
* per-bank / per-pseudo-channel timing state (``_VbaTracker`` rows, FAW
  windows, bus-busy heaps, gap tables);
* the refresh engines, including postponement counters mid-window;
* the stats accumulators, including ``LatencyAccumulator`` reservoirs
  (their LCG state is plain data, so sampling continues identically).

Restoring a checkpoint and continuing is **bit-identical** to never
having stopped: the equivalence suite (``tests/sim/test_checkpoint.py``)
proves it for both controllers, refresh enabled, checkpoints taken
mid-burst-train included -- a checkpoint request during a planned train
truncates the train through the same arrival-truncation path a scheduled
arrival uses, so the controller state at the cut is a state the
uninterrupted run also visits.

Format
------
A checkpoint is a frozen record: a format ``version``, a ``kind`` tag
naming what was snapshotted, the capture time, the pickled state payload,
and a SHA-256 digest of the payload verified before unpickling (a torn
or bit-rotted file fails loudly as :class:`CheckpointError`, never as a
subtly wrong simulation).  On-disk files add a magic header so stray
files are rejected before any unpickling happens.

Only load checkpoint files you wrote yourself: like any pickle-based
format, a malicious file can execute code.  The digest detects
corruption, not tampering.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import os

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "load_checkpoint",
    "make_checkpoint",
    "restore_controller",
    "save_checkpoint",
    "snapshot_controller",
]

#: Current checkpoint format version.  Bump when the pickled state layout
#: changes incompatibly; :func:`load_checkpoint` and
#: :func:`restore_controller` reject other versions loudly.
CHECKPOINT_VERSION = 1

#: Magic header of on-disk checkpoint files (rejects stray files before
#: any unpickling happens).
_FILE_MAGIC = b"ROMECKPT"


class CheckpointError(RuntimeError):
    """A checkpoint could not be created, verified, or restored."""


@dataclass(frozen=True)
class Checkpoint:
    """One captured simulation state, verifiable and picklable.

    ``payload`` is the pickled state as bytes -- keeping it opaque means a
    ``Checkpoint`` itself always pickles (pool transport, on-disk files)
    without re-walking the state graph, and the ``digest`` keeps the
    payload honest across that transport.  ``meta`` carries small
    plain-data annotations (scenario names, rate steps); it is not
    covered by the digest and never needed for restore correctness.
    """

    version: int
    kind: str
    now_ns: int
    payload: bytes = field(repr=False)
    digest: str
    meta: Dict[str, Any] = field(default_factory=dict)

    def state(self) -> Any:
        """Verify the payload digest, then unpickle and return the state."""
        actual = hashlib.sha256(self.payload).hexdigest()
        if actual != self.digest:
            raise CheckpointError(
                f"checkpoint payload digest mismatch (kind={self.kind!r}): "
                f"expected {self.digest[:12]}..., got {actual[:12]}..."
            )
        return pickle.loads(self.payload)


def make_checkpoint(kind: str, now_ns: int, state: Any,
                    meta: Optional[Dict[str, Any]] = None) -> Checkpoint:
    """Capture ``state`` (any picklable object graph) as a checkpoint."""
    try:
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"state of kind {kind!r} is not picklable: {exc!r}"
        ) from exc
    return Checkpoint(
        version=CHECKPOINT_VERSION,
        kind=kind,
        now_ns=now_ns,
        payload=payload,
        digest=hashlib.sha256(payload).hexdigest(),
        meta=dict(meta or {}),
    )


def _controller_kind(controller: Any) -> str:
    # Local imports: checkpoint is a leaf module both controller layers
    # may eventually import for self-snapshotting.
    from repro.controller.mc import ConventionalMemoryController
    from repro.core.controller import RoMeMemoryController

    if isinstance(controller, RoMeMemoryController):
        return "rome-controller"
    if isinstance(controller, ConventionalMemoryController):
        return "conventional-controller"
    raise CheckpointError(
        f"cannot snapshot {type(controller).__name__}: expected "
        f"RoMeMemoryController or ConventionalMemoryController"
    )


def snapshot_controller(controller: Any,
                        meta: Optional[Dict[str, Any]] = None) -> Checkpoint:
    """Snapshot a memory controller's complete state.

    The controller must be at a quiescent instant from the engine's point
    of view -- between ``advance_to`` calls, which is the only time caller
    code ever sees it.  Both controllers keep all state in plain picklable
    containers (queues, dicts, heaps as lists, dataclasses), so one
    whole-object pickle captures everything: queue contents, bank timing,
    refresh postponement counters, stats, latency reservoirs.
    """
    return make_checkpoint(
        kind=_controller_kind(controller),
        now_ns=controller.now,
        state=controller,
        meta=meta,
    )


def restore_controller(checkpoint: Checkpoint) -> Any:
    """Rebuild the controller captured by :func:`snapshot_controller`.

    Returns a fresh, independent controller object: restoring twice gives
    two controllers that do not share mutable state, so one checkpoint
    can seed several what-if continuations.
    """
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} is not supported "
            f"(this tree reads version {CHECKPOINT_VERSION})"
        )
    if checkpoint.kind not in ("rome-controller", "conventional-controller"):
        raise CheckpointError(
            f"checkpoint kind {checkpoint.kind!r} is not a controller "
            f"snapshot"
        )
    controller = checkpoint.state()
    if controller.now != checkpoint.now_ns:
        raise CheckpointError(
            f"restored controller is at {controller.now} ns but the "
            f"checkpoint was captured at {checkpoint.now_ns} ns"
        )
    return controller


# ------------------------------------------------------------------ on disk


def save_checkpoint(checkpoint: Checkpoint,
                    path: Union[str, os.PathLike]) -> None:
    """Write a checkpoint to ``path`` (magic header + pickled record)."""
    blob = pickle.dumps(
        {
            "version": checkpoint.version,
            "kind": checkpoint.kind,
            "now_ns": checkpoint.now_ns,
            "payload": checkpoint.payload,
            "digest": checkpoint.digest,
            "meta": checkpoint.meta,
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    with open(path, "wb") as stream:
        stream.write(_FILE_MAGIC)
        stream.write(blob)
        stream.flush()
        os.fsync(stream.fileno())


def load_checkpoint(path: Union[str, os.PathLike]) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Rejects files without the magic header before unpickling anything;
    version and digest checks happen in :class:`Checkpoint` accessors.
    """
    with open(path, "rb") as stream:
        magic = stream.read(len(_FILE_MAGIC))
        if magic != _FILE_MAGIC:
            raise CheckpointError(
                f"{os.fspath(path)!r} is not a checkpoint file "
                f"(bad magic header)"
            )
        try:
            record = pickle.loads(stream.read())
        except Exception as exc:
            raise CheckpointError(
                f"{os.fspath(path)!r} is corrupt: {exc!r}"
            ) from exc
    try:
        checkpoint = Checkpoint(
            version=record["version"],
            kind=record["kind"],
            now_ns=record["now_ns"],
            payload=record["payload"],
            digest=record["digest"],
            meta=record["meta"],
        )
    except (KeyError, TypeError) as exc:
        raise CheckpointError(
            f"{os.fspath(path)!r} is missing checkpoint fields: {exc!r}"
        ) from exc
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {checkpoint.version} is not supported "
            f"(this tree reads version {CHECKPOINT_VERSION})"
        )
    return checkpoint
