"""Frozen seed implementation of the RoMe controller (golden reference).

This module preserves the original per-nanosecond simulation core exactly as
it shipped in the seed tree: one Python-level scheduling evaluation per
nanosecond, O(num_VBAs) state scans in ``_active_fsms``/``_release_finished``,
``list(queue)`` copies on the issue/retire paths, and full per-command
expansion on every issue.

It exists for two reasons:

* it is the *oracle* for the event-driven equivalence suite -- an
  independent, obviously-correct implementation the optimized
  :class:`repro.core.controller.RoMeMemoryController` must match
  cycle-for-cycle and stat-for-stat; and
* it is the baseline ``benchmarks/bench_sim_throughput.py`` measures the
  event-driven core against, so the perf trajectory tracks speedup over the
  seed rather than over an already-optimized tick loop.

Do not optimize this file; its slowness is the point.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.command_generator import CommandGenerator
from repro.core.controller import (
    RoMeControllerConfig,
    RoMeControllerStats,
    VbaState,
    _VbaTracker,
)
from repro.core.interface import RowRequest
from repro.core.refresh import RomeRefreshScheduler
from repro.dram.energy import EnergyCounters


class ReferenceRoMeController:
    """Seed-faithful per-nanosecond RoMe controller (reference model)."""

    def __init__(self, config: Optional[RoMeControllerConfig] = None,
                 channel_id: int = 0) -> None:
        self.config = config or RoMeControllerConfig()
        self.channel_id = channel_id
        self.timing = self.config.timing
        self.command_generator = CommandGenerator(
            timing=self.config.conventional_timing, vba=self.config.vba
        )
        self.queue: Deque[RowRequest] = deque()
        self._backlog: Deque[RowRequest] = deque()
        self._vbas: Dict[Tuple[int, int], _VbaTracker] = {
            (sid, vba): _VbaTracker()
            for sid in range(self.config.num_stack_ids)
            for vba in range(self.config.vbas_per_stack)
        }
        self.refresh = (
            RomeRefreshScheduler(
                timing=self.config.conventional_timing,
                num_vbas=self.config.vbas_per_stack,
                num_stack_ids=self.config.num_stack_ids,
                banks_per_vba=self.config.vba.banks_per_vba,
            )
            if self.config.enable_refresh
            else None
        )
        self.stats = RoMeControllerStats()
        self._bus_free_at = 0
        self._last_was_read: Optional[bool] = None
        self._last_stack: Optional[int] = None
        self._last_issue_ns: Optional[int] = None
        self._expanded_activates = 0
        self._expanded_cas = 0
        self._expanded_precharges = 0
        self.now = 0

    # -------------------------------------------------------------- enqueue

    def enqueue(self, request: RowRequest) -> None:
        if request.vba >= self.config.vbas_per_stack:
            raise ValueError("vba out of range")
        if request.stack_id >= self.config.num_stack_ids:
            raise ValueError("stack_id out of range for this controller")
        self._backlog.append(request)

    def _fill_queue(self) -> None:
        while self._backlog and len(self.queue) < self.config.request_queue_depth:
            self.queue.append(self._backlog.popleft())

    # -------------------------------------------------------------- FSM use

    def _active_fsms(self, now: int) -> Tuple[int, int]:
        data = sum(
            1 for tracker in self._vbas.values()
            if tracker.state in (VbaState.READING, VbaState.WRITING)
            and not tracker.is_free(now)
        )
        refreshing = sum(
            1 for tracker in self._vbas.values()
            if tracker.state is VbaState.REFRESHING and not tracker.is_free(now)
        )
        return data, refreshing

    def _release_finished(self, now: int) -> None:
        for tracker in self._vbas.values():
            if tracker.state is not VbaState.IDLE and tracker.is_free(now):
                tracker.state = VbaState.IDLE

    # --------------------------------------------------------------- issue

    def _command_gap(self, request: RowRequest, now: int) -> int:
        if self._last_issue_ns is None or self._last_was_read is None:
            return now
        same_stack = self._last_stack == request.stack_id
        gap = self.timing.gap(
            previous_is_read=self._last_was_read,
            next_is_read=request.is_read,
            same_stack=same_stack,
        )
        return max(now, self._last_issue_ns + gap)

    def _try_issue_refresh(self, now: int) -> bool:
        if self.refresh is None:
            return False
        key = self.refresh.most_urgent(now)
        if key is None:
            return False
        critical = self.refresh.is_critical(key, now)
        stack_id, vba_index = key
        tracker = self._vbas[(stack_id, vba_index)]
        if not tracker.is_free(now):
            return False
        data_fsms, refresh_fsms = self._active_fsms(now)
        if refresh_fsms >= self.config.max_refresh_fsms and not critical:
            return False
        tracker.state = VbaState.REFRESHING
        tracker.busy_until = now + self.refresh.stall_ns()
        self.refresh.note_issued(key, now)
        self.stats.refreshes_issued += 1
        self.command_generator.expand_refresh(self.channel_id, stack_id, vba_index)
        self.stats.peak_active_fsms = max(
            self.stats.peak_active_fsms, data_fsms + refresh_fsms + 1
        )
        return True

    def _try_issue_data(self, now: int) -> bool:
        data_fsms, refresh_fsms = self._active_fsms(now)
        if data_fsms >= self.config.max_data_fsms:
            return False
        for request in list(self.queue):
            if request.issue_ns is not None:
                continue
            tracker = self._vbas[(request.stack_id, request.vba)]
            if not tracker.is_free(now):
                continue
            start = self._command_gap(request, now)
            if start > now or self._bus_free_at > now:
                continue
            self._issue(request, tracker, now)
            return True
        return False

    def _issue(self, request: RowRequest, tracker: _VbaTracker, now: int) -> None:
        timing = self.timing
        duration = timing.duration(request.is_read)
        occupancy = timing.gap(
            previous_is_read=request.is_read,
            next_is_read=request.is_read,
            same_stack=True,
        )
        tracker.state = VbaState.READING if request.is_read else VbaState.WRITING
        tracker.busy_until = now + duration
        self._bus_free_at = now + occupancy
        self._last_was_read = request.is_read
        self._last_stack = request.stack_id
        self._last_issue_ns = now
        request.issue_ns = now
        request.completion_ns = now + duration

        expansion = self.command_generator.expand(request)
        self._expanded_activates += expansion.activates
        self._expanded_cas += expansion.column_commands
        self._expanded_precharges += expansion.precharges
        self.stats.data_bus_busy_ns += expansion.data_bus_ns

        row_bytes = self.config.vba.effective_row_bytes
        if request.is_read:
            self.stats.served_reads += 1
            self.stats.bytes_read += row_bytes
            self.stats.read_latency.record(request.completion_ns - request.arrival_ns)
        else:
            self.stats.served_writes += 1
            self.stats.bytes_written += row_bytes
        self.stats.overfetch_bytes += request.overfetch_bytes(row_bytes)

        data_fsms, refresh_fsms = self._active_fsms(now)
        self.stats.peak_active_fsms = max(
            self.stats.peak_active_fsms, data_fsms + refresh_fsms
        )

    # ------------------------------------------------------------------ tick

    def _retire_completed(self, now: int) -> None:
        for request in list(self.queue):
            if request.completion_ns is not None and now >= request.completion_ns:
                self.queue.remove(request)

    def tick(self) -> None:
        now = self.now
        self._release_finished(now)
        self._retire_completed(now)
        self._fill_queue()
        if not self._try_issue_refresh(now):
            self._try_issue_data(now)
        self.now = now + 1

    def run_until_idle(self, max_ns: int = 50_000_000) -> int:
        while self._backlog or self.queue:
            if self.now >= max_ns:
                raise RuntimeError("RoMe controller did not drain in time")
            self.tick()
        self.now = max(
            self.now, max(tracker.busy_until for tracker in self._vbas.values())
        )
        return self.now

    def run_for(self, duration_ns: int) -> None:
        end = self.now + duration_ns
        while self.now < end:
            self.tick()

    # ----------------------------------------------------------------- stats

    def energy_counters(self) -> EnergyCounters:
        interface_commands = (
            self.stats.served_reads
            + self.stats.served_writes
            + self.stats.refreshes_issued
        )
        return EnergyCounters(
            activates=self._expanded_activates,
            precharges=self._expanded_precharges,
            reads_bytes=self.stats.bytes_read,
            writes_bytes=self.stats.bytes_written,
            interface_commands=interface_commands,
            refreshes=self.stats.refreshes_issued * self.config.vba.banks_per_vba,
            row_command_expansions=self.command_generator.expansions,
            elapsed_ns=float(self.now),
            num_channels=1,
            row_bytes=self.config.conventional_timing.row_size_bytes,
        )
