"""ECC codeword analysis for row-granularity access (Section VII).

HBM4 adds two ECC pins per 32 DQ pins on top of the on-die ECC available
since HBM2E.  Because RoMe transfers whole 4 KB effective rows, it can use a
much larger ECC codeword than the 32 B baseline; larger codewords need fewer
parity bits per data bit for the same Hamming-distance guarantee, freeing
capacity or enabling stronger codes.  This module quantifies that trade-off
with standard single-error-correct / double-error-detect (SEC-DED) and
Reed-Solomon-style symbol-based codes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Dict, List


class EccOutcome(str, enum.Enum):
    """What decoding one (possibly corrupted) codeword produced.

    ``CLEAN`` -- no faulty bits; ``CORRECTED`` -- faults within the
    code's correction capability, data repaired transparently;
    ``DETECTED_UNCORRECTABLE`` (DUE) -- faults beyond correction but
    within detection, the read reports an error and RAS can retry;
    ``SILENT_MISCORRECT`` (SDC) -- faults beyond even the detection
    guarantee, so the decoder may hand back wrong data as if it were
    good.  A ``str`` mixin keeps the members JSON/pickle friendly.
    """

    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED_UNCORRECTABLE = "due"
    SILENT_MISCORRECT = "sdc"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class EccScheme:
    """A (data bits, parity bits) code protecting one codeword."""

    name: str
    data_bits: int
    parity_bits: int

    @property
    def codeword_bits(self) -> int:
        return self.data_bits + self.parity_bits

    @property
    def overhead(self) -> float:
        """Parity bits per data bit."""
        return self.parity_bits / self.data_bits

    @property
    def storage_efficiency(self) -> float:
        return self.data_bits / self.codeword_bits


def secded_parity_bits(data_bits: int) -> int:
    """Parity bits of a SEC-DED (extended Hamming) code over ``data_bits``.

    The classic requirement is ``2**r >= data_bits + r + 1`` plus one extra
    bit for double-error detection.
    """
    if data_bits <= 0:
        raise ValueError("data_bits must be positive")
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r + 1


def secded_scheme(data_bytes: int) -> EccScheme:
    """SEC-DED protecting a codeword of ``data_bytes`` of data."""
    data_bits = data_bytes * 8
    return EccScheme(
        name=f"SEC-DED/{data_bytes}B",
        data_bits=data_bits,
        parity_bits=secded_parity_bits(data_bits),
    )


def symbol_code_scheme(data_bytes: int, symbol_bits: int = 8,
                       correctable_symbols: int = 2) -> EccScheme:
    """A Reed-Solomon-style symbol code (e.g. chipkill-class protection).

    Correcting ``t`` symbols requires ``2 t`` parity symbols.
    """
    if data_bytes <= 0 or symbol_bits <= 0 or correctable_symbols <= 0:
        raise ValueError("all parameters must be positive")
    data_bits = data_bytes * 8
    parity_bits = 2 * correctable_symbols * symbol_bits
    return EccScheme(
        name=f"RS-{correctable_symbols}sym/{data_bytes}B",
        data_bits=data_bits,
        parity_bits=parity_bits,
    )


@dataclass(frozen=True)
class EccCapability:
    """An :class:`EccScheme` plus its worst-case bit-level guarantees.

    ``correct_bits`` is the largest number of faulty bits the code is
    *guaranteed* to correct, ``detect_bits`` the largest it is guaranteed
    to at least detect; both are worst-case over bit placement, so for a
    symbol code correcting ``t`` symbols they are ``t`` and ``2 t``
    (every faulty bit may land in its own symbol).  SEC-DED is
    Hamming-distance 4: correct 1, detect 2.  ``classify`` is the single
    source of truth for fault outcomes -- the runtime RAS layer calls it
    directly, so simulation outcomes agree with this codeword math by
    construction (and the property tests pin the capability edges).
    """

    scheme: EccScheme
    correct_bits: int
    detect_bits: int

    def __post_init__(self) -> None:
        if self.correct_bits < 0 or self.detect_bits < self.correct_bits:
            raise ValueError(
                "capability requires 0 <= correct_bits <= detect_bits"
            )

    def classify(self, faulty_bits: int) -> EccOutcome:
        """Outcome of decoding a codeword carrying ``faulty_bits`` errors."""
        if faulty_bits < 0:
            raise ValueError("faulty_bits must be non-negative")
        if faulty_bits == 0:
            return EccOutcome.CLEAN
        if faulty_bits <= self.correct_bits:
            return EccOutcome.CORRECTED
        if faulty_bits <= self.detect_bits:
            return EccOutcome.DETECTED_UNCORRECTABLE
        return EccOutcome.SILENT_MISCORRECT


def secded_capability(data_bytes: int) -> EccCapability:
    """SEC-DED over ``data_bytes``: corrects 1 bit, detects 2."""
    return EccCapability(scheme=secded_scheme(data_bytes),
                         correct_bits=1, detect_bits=2)


def symbol_capability(data_bytes: int, symbol_bits: int = 8,
                      correctable_symbols: int = 2) -> EccCapability:
    """RS-style symbol code: corrects ``t`` bits, detects ``2 t``
    (worst case -- each faulty bit in a distinct symbol)."""
    return EccCapability(
        scheme=symbol_code_scheme(data_bytes, symbol_bits,
                                  correctable_symbols),
        correct_bits=correctable_symbols,
        detect_bits=2 * correctable_symbols,
    )


def no_ecc_capability(data_bytes: int) -> EccCapability:
    """The unprotected strawman: every faulty bit is silent corruption."""
    scheme = EccScheme(name=f"none/{data_bytes}B",
                       data_bits=data_bytes * 8, parity_bits=0)
    return EccCapability(scheme=scheme, correct_bits=0, detect_bits=0)


#: Named capability factories for CLI/scenario use.  Each maps a scheme
#: name to ``f(codeword_data_bytes) -> EccCapability`` so the *same* name
#: yields the controller-appropriate codeword: 32 B on the conventional
#: access granularity, 4 KB on RoMe's effective row -- which is exactly
#: the Section VII argument this subsystem exercises.
ECC_SCHEMES: Dict[str, Callable[[int], EccCapability]] = {
    "secded": secded_capability,
    "rs": symbol_capability,
    "none": no_ecc_capability,
}


def capability_for(scheme_name: str, data_bytes: int) -> EccCapability:
    """Resolve a named ECC scheme at a codeword size (see ECC_SCHEMES)."""
    try:
        factory = ECC_SCHEMES[scheme_name]
    except KeyError:
        raise ValueError(
            f"unknown ECC scheme {scheme_name!r}; "
            f"expected one of {sorted(ECC_SCHEMES)}"
        ) from None
    return factory(data_bytes)


def codeword_comparison(codeword_bytes: List[int] | None = None) -> List[Dict[str, float]]:
    """Compare ECC overhead across codeword sizes (32 B baseline vs RoMe).

    The paper's observation: with a 4 KB access granularity the design space
    opens up -- the same SEC-DED guarantee costs an order of magnitude less
    parity per data bit, or the saved bits can fund stronger codes.
    """
    codeword_bytes = codeword_bytes or [32, 64, 128, 256, 1024, 4096]
    rows = []
    for size in codeword_bytes:
        secded = secded_scheme(size)
        symbol = symbol_code_scheme(size)
        rows.append(
            {
                "codeword_bytes": size,
                "secded_parity_bits": secded.parity_bits,
                "secded_overhead": secded.overhead,
                "symbol_parity_bits": symbol.parity_bits,
                "symbol_overhead": symbol.overhead,
            }
        )
    return rows


def parity_savings_vs_baseline(baseline_bytes: int = 32,
                               rome_bytes: int = 4096) -> float:
    """Fractional reduction in SEC-DED parity overhead moving 32 B -> 4 KB.

    The baseline must protect each 32 B access independently, so its overhead
    is ``parity(32 B) / 32 B`` replicated across the row; RoMe can protect the
    whole effective row with one codeword.
    """
    baseline = secded_scheme(baseline_bytes)
    codewords_per_row = rome_bytes // baseline_bytes
    baseline_parity = baseline.parity_bits * codewords_per_row
    rome_parity = secded_scheme(rome_bytes).parity_bits
    return 1.0 - rome_parity / baseline_parity
