"""C/A pin analysis and channel expansion (Sections IV-D and IV-E).

Row-granularity access removes the column command pins entirely and shrinks
the row command pins: the minimum command-issue interval grows from ``tCCDS``
to ``2 x tRRDS`` (the tightest case is a REF immediately following a
``RD_row``/``WR_row``), so commands can be serialized over far fewer pins.
RoMe reduces the per-channel C/A pins from 18 to 5, saving 13 pins per
channel; across a 32-channel cube those 416 pins (plus 12 extra) fund four
additional channels, a 12.5 % bandwidth increase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class CommandEncoding:
    """Bit-level encoding of the RoMe command set.

    RoMe keeps the eight conventional row commands, adds MRS, ``RD_row`` and
    ``WR_row`` (eleven total), keeps the four opcode pins of the HBM4 row bus,
    and carries the (stack ID, virtual bank, row) address.
    """

    num_commands: int = 11
    opcode_bits: int = 4
    stack_id_bits: int = 2
    vba_bits: int = 3
    row_bits: int = 14
    #: C/A pins toggle at double data rate relative to a 1 GHz command clock.
    transfers_per_ns: int = 2

    @property
    def address_bits(self) -> int:
        return self.stack_id_bits + self.vba_bits + self.row_bits

    @property
    def data_command_bits(self) -> int:
        """Bits of a RD_row / WR_row command packet."""
        return self.opcode_bits + self.address_bits

    @property
    def refresh_command_bits(self) -> int:
        """Bits of a REF command packet (no row address)."""
        return self.opcode_bits + self.stack_id_bits + self.vba_bits

    def minimum_opcode_bits(self) -> int:
        return max(1, math.ceil(math.log2(self.num_commands)))


def command_issue_latency_ns(
    command_bits: int,
    num_pins: int,
    transfers_per_ns: int = 2,
) -> float:
    """Time to serialize a ``command_bits``-wide packet over ``num_pins``."""
    if num_pins <= 0:
        raise ValueError("num_pins must be positive")
    transfers = math.ceil(command_bits / num_pins)
    return transfers / transfers_per_ns


def ca_pin_sweep(
    pin_counts: Optional[List[int]] = None,
    encoding: Optional[CommandEncoding] = None,
    timing: Optional[TimingParameters] = None,
    data_transfer_ns: int = 64,
) -> List[Dict[str, float]]:
    """Reproduce Figure 10: issue latencies versus the number of C/A pins.

    For every candidate pin count this reports the effective
    ``RD_row``-to-``RD_row`` interval (bounded below by the data transfer
    time) and the access-to-REF latency, together with the ``2 x tRRDS``
    budget that the latter must respect.
    """
    encoding = encoding or CommandEncoding()
    timing = timing or TimingParameters()
    pin_counts = pin_counts or [10, 9, 8, 7, 6, 5]
    budget = 2 * timing.tRRDS
    rows = []
    for pins in pin_counts:
        data_latency = command_issue_latency_ns(
            encoding.data_command_bits, pins, encoding.transfers_per_ns
        )
        refresh_latency = command_issue_latency_ns(
            encoding.refresh_command_bits, pins, encoding.transfers_per_ns
        )
        rows.append(
            {
                "pins": pins,
                "rd_row_to_rd_row_ns": max(float(data_transfer_ns), data_latency),
                "access_to_ref_ns": data_latency + refresh_latency,
                "budget_ns": float(budget),
                "meets_budget": data_latency + refresh_latency <= budget,
            }
        )
    return rows


def minimum_ca_pins(
    encoding: Optional[CommandEncoding] = None,
    timing: Optional[TimingParameters] = None,
) -> int:
    """Smallest pin count whose access-to-REF latency fits within 2 x tRRDS."""
    encoding = encoding or CommandEncoding()
    timing = timing or TimingParameters()
    for pins in range(1, 19):
        rows = ca_pin_sweep([pins], encoding, timing)
        if rows[0]["meets_budget"]:
            return pins
    return 18


@dataclass(frozen=True)
class PinBudget:
    """Per-cube pin budget used for the channel-expansion analysis."""

    dq_pins_per_channel: int = 64
    row_ca_pins_per_channel: int = 10
    col_ca_pins_per_channel: int = 8
    misc_pins_per_channel: int = 38
    num_channels: int = 32

    @property
    def ca_pins_per_channel(self) -> int:
        return self.row_ca_pins_per_channel + self.col_ca_pins_per_channel

    @property
    def pins_per_channel(self) -> int:
        return (
            self.dq_pins_per_channel
            + self.ca_pins_per_channel
            + self.misc_pins_per_channel
        )

    @property
    def total_pins(self) -> int:
        return self.pins_per_channel * self.num_channels


def hbm4_pin_budget() -> PinBudget:
    """The HBM4 baseline: 120 pins per channel, 32 channels."""
    return PinBudget()


def rome_pin_budget(ca_pins: int = 5) -> PinBudget:
    """RoMe: the same channel with only ``ca_pins`` C/A pins (default 5)."""
    return PinBudget(
        row_ca_pins_per_channel=ca_pins,
        col_ca_pins_per_channel=0,
    )


@dataclass(frozen=True)
class ChannelExpansion:
    """Result of reinvesting saved C/A pins into extra channels."""

    baseline: PinBudget
    rome: PinBudget
    added_channels: int
    extra_pins: int
    bandwidth_gain: float

    def describe(self) -> str:
        return (
            f"{self.baseline.num_channels} -> "
            f"{self.baseline.num_channels + self.added_channels} channels, "
            f"+{self.extra_pins} pins, +{self.bandwidth_gain:.1%} bandwidth"
        )


def channel_expansion(
    baseline: Optional[PinBudget] = None,
    rome: Optional[PinBudget] = None,
    added_channels: int = 4,
) -> ChannelExpansion:
    """Compute the Section IV-E channel expansion.

    The saved C/A pins across the baseline channel count are compared against
    the cost of ``added_channels`` extra RoMe channels; the remainder is the
    (small) number of extra pins the processor interface must grow by.
    """
    baseline = baseline or hbm4_pin_budget()
    rome = rome or rome_pin_budget()
    saved_per_channel = baseline.pins_per_channel - rome.pins_per_channel
    saved_total = saved_per_channel * baseline.num_channels
    cost = added_channels * rome.pins_per_channel
    extra_pins = max(0, cost - saved_total)
    bandwidth_gain = added_channels / baseline.num_channels
    return ChannelExpansion(
        baseline=baseline,
        rome=rome,
        added_channels=added_channels,
        extra_pins=extra_pins,
        bandwidth_gain=bandwidth_gain,
    )
