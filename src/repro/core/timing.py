"""RoMe timing parameters (Table III / Table V).

The RoMe memory controller tracks only ten timing parameters: the
read/write-to-read/write spacings between different VBAs (``S`` suffix) and
different stack IDs (``R`` suffix), plus the same-VBA command durations
``tRD_row`` and ``tWR_row``.  This module provides the paper's Table V values
and a derivation of equivalent values from the conventional timing parameters
and a virtual-bank configuration, which the tests cross-check against the
command-generator expansion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.core.virtual_bank import VirtualBankConfig, paper_vba_config
from repro.dram.timing import HBM4_TIMING, TimingParameters


@dataclass(frozen=True)
class RoMeTimingParameters:
    """The ten RoMe timing parameters plus derived channel geometry."""

    tR2RS: int = 64    # RD_row to RD_row, different VBA
    tR2RR: int = 68    # RD_row to RD_row, different stack ID
    tR2WS: int = 69    # RD_row to WR_row, different VBA
    tR2WR: int = 73    # RD_row to WR_row, different stack ID
    tW2RS: int = 71    # WR_row to RD_row, different VBA
    tW2RR: int = 75    # WR_row to RD_row, different stack ID
    tW2WS: int = 64    # WR_row to WR_row, different VBA
    tW2WR: int = 68    # WR_row to WR_row, different stack ID
    tRD_row: int = 95  # RD_row duration on the same VBA
    tWR_row: int = 115  # WR_row duration on the same VBA

    # Refresh-related parameters inherited from the conventional device.
    tREFIpb: int = 122
    tRFCpb: int = 280
    tRREFD: int = 8

    # Geometry.
    effective_row_bytes: int = 4096
    access_granularity_bytes: int = 4096

    def as_dict(self) -> Dict[str, int]:
        return {
            name: getattr(self, name)
            for name in self.__dataclass_fields__  # type: ignore[attr-defined]
        }

    @property
    def num_scheduling_parameters(self) -> int:
        """The count the paper compares against the conventional MC (10)."""
        return 10

    def gap(self, previous_is_read: bool, next_is_read: bool,
            same_stack: bool = True) -> int:
        """Minimum spacing between two row commands to *different* VBAs."""
        if previous_is_read and next_is_read:
            return self.tR2RS if same_stack else self.tR2RR
        if previous_is_read and not next_is_read:
            return self.tR2WS if same_stack else self.tR2WR
        if not previous_is_read and next_is_read:
            return self.tW2RS if same_stack else self.tW2RR
        return self.tW2WS if same_stack else self.tW2WR

    def duration(self, is_read: bool) -> int:
        """Occupancy of the target VBA for one row command."""
        return self.tRD_row if is_read else self.tWR_row

    def with_overrides(self, **overrides: int) -> "RoMeTimingParameters":
        return replace(self, **overrides)

    def validate(self) -> None:
        values = self.as_dict()
        if min(values.values()) < 0:
            raise ValueError("RoMe timing parameters must be non-negative")
        if self.tR2RS > self.tRD_row:
            raise ValueError("tR2RS cannot exceed tRD_row")
        if self.tW2WS > self.tWR_row:
            raise ValueError("tW2WS cannot exceed tWR_row")


#: Table V values adopted by the paper.
ROME_TIMING = RoMeTimingParameters()


def derive_rome_timing(
    conventional: TimingParameters | None = None,
    vba: VirtualBankConfig | None = None,
    stack_penalty_ns: int = 4,
) -> RoMeTimingParameters:
    """Derive RoMe timing from conventional timing and a VBA configuration.

    The derivation follows Section V-A:

    * ``tR2RS``/``tW2WS`` equal the data-transfer time of one effective row
      (the bus is the only shared resource between different VBAs);
    * read/write turnaround adds the conventional ``tRTW``/``tWTRS`` and the
      CWL-CL offset;
    * different-stack-ID commands pay an extra 1-2 nCK, modelled as
      ``stack_penalty_ns``;
    * ``tRD_row``/``tWR_row`` are the full same-VBA command durations
      including activation, the column burst train, and precharge/recovery.
    """
    conventional = conventional or HBM4_TIMING
    vba = vba or paper_vba_config()
    data_ns = vba.data_transfer_ns(conventional)
    stagger = conventional.tRRDS - conventional.tCCDS

    t_r2rs = data_ns
    t_w2ws = data_ns
    t_r2ws = data_ns + conventional.tRTW
    t_w2rs = data_ns + conventional.tWTRS + (conventional.tCL - conventional.tCWL) - 1

    # Same-VBA durations.  The read path can overlap the first bank's
    # precharge with the second bank's final bursts (one tCCDL of overlap);
    # the write path must wait one tCCDL for the last data beat to land
    # before write recovery starts.
    t_rd_row = (
        stagger
        + conventional.tRCDRD
        + data_ns
        - conventional.tCCDL
        + conventional.tRP
    )
    t_wr_row = (
        stagger
        + conventional.tRCDWR
        + data_ns
        + conventional.tCCDL
        + conventional.tWR
        + conventional.tRP
    )

    derived = RoMeTimingParameters(
        tR2RS=t_r2rs,
        tR2RR=t_r2rs + stack_penalty_ns,
        tR2WS=t_r2ws,
        tR2WR=t_r2ws + stack_penalty_ns,
        tW2RS=t_w2rs,
        tW2RR=t_w2rs + stack_penalty_ns,
        tW2WS=t_w2ws,
        tW2WR=t_w2ws + stack_penalty_ns,
        tRD_row=t_rd_row,
        tWR_row=t_wr_row,
        tREFIpb=conventional.tREFIpb,
        tRFCpb=conventional.tRFCpb,
        tRREFD=conventional.tRREFD,
        effective_row_bytes=vba.effective_row_bytes,
        access_granularity_bytes=vba.effective_row_bytes,
    )
    derived.validate()
    return derived
