"""The logic-die command generator.

RoMe places a command generator on the HBM logic die (Section IV-C).  It
accepts a row-level command (``RD_row`` / ``WR_row`` / paired refresh) and
emits a *fixed, predetermined* sequence of conventional DRAM commands at fixed
offsets: one ACT per constituent bank, a perfectly interleaved train of RD or
WR commands spaced ``tCCDS`` apart, and the closing PREs.  Because the
sequence is static the generator needs no bank-state tracking; the intentional
``tRRDS - tCCDS`` stagger before the first bank's column train keeps the
interleaving legal (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.interface import RowRequest, RowRequestKind
from repro.core.virtual_bank import BankMerge, PseudoChannelMerge, VirtualBankConfig
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class TimedCommand:
    """A conventional DRAM command scheduled at a fixed offset."""

    offset_ns: int
    command: Command

    def shifted(self, delta_ns: int) -> "TimedCommand":
        return TimedCommand(offset_ns=self.offset_ns + delta_ns, command=self.command)


@dataclass(frozen=True)
class ExpansionResult:
    """The expansion of one row-level command."""

    commands: Tuple[TimedCommand, ...]
    #: Time from the row-level command until the bank(s) are reusable.
    duration_ns: int
    #: Time the channel data bus is occupied by the expansion.
    data_bus_ns: int
    #: Total bytes moved across the channel.
    bytes_transferred: int

    @property
    def activates(self) -> int:
        return sum(1 for tc in self.commands if tc.command.kind is CommandKind.ACT)

    @property
    def column_commands(self) -> int:
        return sum(
            1 for tc in self.commands
            if tc.command.kind in (CommandKind.RD, CommandKind.WR)
        )

    @property
    def precharges(self) -> int:
        return sum(1 for tc in self.commands if tc.command.kind is CommandKind.PRE)


@dataclass(frozen=True)
class ExpansionSummary:
    """Scalar footprint of one expansion, computed without materializing it.

    The memory controller only needs per-expansion command *counts* and bus
    occupancy for energy accounting; building the full
    :class:`TimedCommand` sequence (hundreds of objects per row) on the
    issue path is pure waste.  ``CommandGenerator.summarize`` computes these
    analytically and is cross-checked against ``expand`` by the test suite.
    """

    activates: int
    column_commands: int
    precharges: int
    duration_ns: int
    data_bus_ns: int
    bytes_transferred: int


class CommandGenerator:
    """Expands RoMe row-level commands into conventional command sequences."""

    def __init__(
        self,
        timing: Optional[TimingParameters] = None,
        vba: Optional[VirtualBankConfig] = None,
    ) -> None:
        self.timing = timing or TimingParameters()
        self.vba = vba or VirtualBankConfig()
        self.expansions = 0
        # Summaries depend only on the request kind (the VBA geometry is
        # uniform), so they are computed once per kind and reused.
        self._summary_cache: dict = {}

    # -------------------------------------------------------------- helpers

    def _constituent_banks(self, vba_index: int) -> List[Tuple[int, int]]:
        """(bank_group, bank) pairs that make up virtual bank ``vba_index``."""
        merge = self.vba.bank_merge
        groups = self.vba.num_bank_groups
        banks = self.vba.banks_per_group
        if merge is BankMerge.WIDE_BANK:
            bank_group = vba_index % groups
            bank = vba_index // groups
            return [(bank_group, bank)]
        if merge is BankMerge.TANDEM_SAME_BG:
            # Two adjacent banks within one bank group.
            pairs_per_group = banks // 2
            bank_group = vba_index // pairs_per_group
            first_bank = (vba_index % pairs_per_group) * 2
            return [(bank_group, first_bank), (bank_group, first_bank + 1)]
        # INTERLEAVED_DIFF_BG: the same bank index in two adjacent bank groups.
        group_pairs = groups // 2
        pair = vba_index % group_pairs
        bank = vba_index // group_pairs
        return [(2 * pair, bank), (2 * pair + 1, bank)]

    def _pseudo_channels(self) -> List[int]:
        if self.vba.pc_merge is PseudoChannelMerge.LOCKSTEP_PC:
            return list(range(self.vba.num_pseudo_channels))
        return [0]

    # ------------------------------------------------------------ expansion

    def expand(self, request: RowRequest) -> ExpansionResult:
        """Expand ``request`` into its fixed conventional command sequence."""
        if request.kind is RowRequestKind.RD_ROW:
            result = self._expand_data(request, is_read=True)
        elif request.kind is RowRequestKind.WR_ROW:
            result = self._expand_data(request, is_read=False)
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot expand {request.kind}")
        self.expansions += 1
        return result

    def summarize(self, request: RowRequest) -> ExpansionSummary:
        """Analytic equivalent of ``expand`` for the controller's hot path.

        Returns the same scalar counts/durations ``expand`` would compute,
        without building the per-command sequence.  Counts one expansion,
        exactly like ``expand``.
        """
        cached = self._summary_cache.get(request.kind)
        if cached is not None:
            self.expansions += 1
            return cached
        if request.kind not in (RowRequestKind.RD_ROW, RowRequestKind.WR_ROW):
            raise ValueError(f"cannot expand {request.kind}")
        is_read = request.kind is RowRequestKind.RD_ROW
        t = self.timing
        vba = self.vba
        banks = self._constituent_banks(request.vba)
        num_pcs = len(self._pseudo_channels())
        rcd = t.tRCDRD if is_read else t.tRCDWR

        interleaved = vba.bank_merge is BankMerge.INTERLEAVED_DIFF_BG
        tandem = vba.bank_merge is BankMerge.TANDEM_SAME_BG
        act_gap = t.tRRDL if tandem else t.tRRDS
        cas_gap = t.tCCDS if interleaved else t.tCCDL
        total_cas = vba.cas_commands_per_row()

        if interleaved:
            first_cas = max(0, act_gap - cas_gap) + rcd
            precharged_banks = min(total_cas, len(banks))
        elif tandem:
            first_cas = act_gap + rcd
            precharged_banks = len(banks) if total_cas else 0
        else:
            first_cas = rcd
            precharged_banks = 1 if total_cas else 0
        last_cas = first_cas + (total_cas - 1) * cas_gap
        recovery = t.tRTP if is_read else t.tCWL + t.burst_ns + t.tWR
        duration = last_cas + recovery + t.tRP

        self.expansions += 1
        summary = ExpansionSummary(
            activates=num_pcs * len(banks),
            column_commands=num_pcs * total_cas,
            precharges=num_pcs * precharged_banks,
            duration_ns=duration,
            data_bus_ns=total_cas * cas_gap,
            bytes_transferred=vba.effective_row_bytes,
        )
        self._summary_cache[request.kind] = summary
        return summary

    def expand_refresh(self, request_channel: int, stack_id: int,
                       vba_index: int) -> ExpansionResult:
        """Paired per-bank refresh for one VBA (Section V-B)."""
        t = self.timing
        banks = self._constituent_banks(vba_index)
        commands: List[TimedCommand] = []
        offset = 0
        for pc in self._pseudo_channels():
            for i, (bank_group, bank) in enumerate(banks):
                commands.append(
                    TimedCommand(
                        offset_ns=i * t.tRREFD,
                        command=Command(
                            kind=CommandKind.REFPB,
                            channel=request_channel,
                            pseudo_channel=pc,
                            stack_id=stack_id,
                            bank_group=bank_group,
                            bank=bank,
                        ),
                    )
                )
        duration = t.tRFCpb + (len(banks) - 1) * t.tRREFD
        return ExpansionResult(
            commands=tuple(sorted(commands, key=lambda c: c.offset_ns)),
            duration_ns=duration,
            data_bus_ns=0,
            bytes_transferred=0,
        )

    # ------------------------------------------------------------- internal

    def _expand_data(self, request: RowRequest, is_read: bool) -> ExpansionResult:
        t = self.timing
        vba = self.vba
        banks = self._constituent_banks(request.vba)
        pcs = self._pseudo_channels()
        column_kind = CommandKind.RD if is_read else CommandKind.WR
        rcd = t.tRCDRD if is_read else t.tRCDWR

        commands: List[TimedCommand] = []

        # ACT to each constituent bank, spaced tRRDS (tRRDL when the banks
        # share a bank group, i.e. the TANDEM_SAME_BG design).
        interleaved = vba.bank_merge is BankMerge.INTERLEAVED_DIFF_BG
        tandem = vba.bank_merge is BankMerge.TANDEM_SAME_BG
        act_gap = t.tRRDL if tandem else t.tRRDS
        cas_gap = t.tCCDS if interleaved else t.tCCDL

        for pc in pcs:
            for i, (bank_group, bank) in enumerate(banks):
                commands.append(
                    TimedCommand(
                        offset_ns=i * act_gap,
                        command=Command(
                            kind=CommandKind.ACT,
                            channel=request.channel,
                            pseudo_channel=pc,
                            stack_id=request.stack_id,
                            bank_group=bank_group,
                            bank=bank,
                            row=request.row,
                            request_id=request.request_id,
                        ),
                    )
                )

        # Column command train.  For the interleaved design the train
        # alternates between the two banks at tCCDS and is staggered by
        # tRRDS - tCCDS so the second bank's tRCD is satisfied (Figure 9).
        # For the wide-bank / tandem designs every command moves the doubled
        # per-access payload and is paced by tCCDL; tandem commands access
        # both banks at once and are modelled as addressed to the first bank.
        total_cas = vba.cas_commands_per_row()
        if interleaved:
            stagger = max(0, act_gap - cas_gap)
            first_cas = stagger + rcd
        elif tandem:
            first_cas = act_gap + rcd  # both banks must be activated first
        else:
            first_cas = rcd
        last_cas_per_bank = {}
        for index in range(total_cas):
            if interleaved:
                bank_group, bank = banks[index % len(banks)]
                column = index // len(banks)
            else:
                bank_group, bank = banks[0]
                column = index
            offset = first_cas + index * cas_gap
            last_cas_per_bank[(bank_group, bank)] = offset
            if tandem:
                # The paired bank is busy at the same instant; record it so
                # the closing precharge covers both banks.
                last_cas_per_bank[banks[1]] = offset
            for pc in pcs:
                commands.append(
                    TimedCommand(
                        offset_ns=offset,
                        command=Command(
                            kind=column_kind,
                            channel=request.channel,
                            pseudo_channel=pc,
                            stack_id=request.stack_id,
                            bank_group=bank_group,
                            bank=bank,
                            row=request.row,
                            column=column,
                            request_id=request.request_id,
                            tag="tandem" if tandem else "",
                        ),
                    )
                )

        # Closing precharges: after read-to-precharge or write recovery.
        pre_offsets = []
        for (bank_group, bank), last_cas in last_cas_per_bank.items():
            if is_read:
                pre_offset = last_cas + t.tRTP
            else:
                pre_offset = last_cas + t.tCWL + t.burst_ns + t.tWR
            pre_offsets.append(pre_offset)
            for pc in pcs:
                commands.append(
                    TimedCommand(
                        offset_ns=pre_offset,
                        command=Command(
                            kind=CommandKind.PRE,
                            channel=request.channel,
                            pseudo_channel=pc,
                            stack_id=request.stack_id,
                            bank_group=bank_group,
                            bank=bank,
                            row=request.row,
                            request_id=request.request_id,
                        ),
                    )
                )

        duration = max(pre_offsets) + t.tRP
        data_bus_ns = total_cas * cas_gap
        commands.sort(key=lambda tc: (tc.offset_ns, tc.command.kind.value))
        return ExpansionResult(
            commands=tuple(commands),
            duration_ns=duration,
            data_bus_ns=data_bus_ns,
            bytes_transferred=vba.effective_row_bytes,
        )

    # ------------------------------------------------------------ validation

    def validate_against_channel(self, request: RowRequest) -> bool:
        """Replay an expansion on a conventional channel timing checker.

        Returns True when every expanded command is legal at (or can be
        nudged to) its scheduled offset; used by the test-suite to show that
        the fixed sequence respects the conventional timing constraints the
        command generator is supposed to encapsulate.
        """
        from repro.dram.channel import Channel, ChannelConfig  # local import to avoid cycle

        config = ChannelConfig(
            timing=self.timing,
            num_pseudo_channels=self.vba.num_pseudo_channels,
            num_bank_groups=self.vba.num_bank_groups,
            banks_per_group=self.vba.banks_per_group,
            num_stack_ids=max(1, request.stack_id + 1),
        )
        channel = Channel(config)
        expansion = self.expand(request)
        # The conventional channel allows one row + one column command per ns;
        # lockstep PCs receive broadcast commands, which we issue to each PC
        # at the same offset (physically they share the C/A bus in legacy
        # mode, so we bypass the per-PC C/A conflict by issuing directly).
        for timed in expansion.commands:
            when = timed.offset_ns
            pc = channel.pseudo_channel(timed.command.pseudo_channel)
            if not pc.can_issue(timed.command, when):
                return False
            pc.issue(timed.command, when)
        return True
