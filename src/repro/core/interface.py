"""The RoMe row-granularity memory interface.

RoMe replaces the conventional column-level interface with two data commands,
``RD_row`` and ``WR_row`` (Section IV-A).  The host (a DMA engine on an AI
accelerator) issues kilobyte-scale requests; the RoMe memory controller maps
each one onto whole effective rows of a virtual bank.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.trace_cache import global_trace_cache

_row_request_ids = itertools.count()


class RowRequestKind(enum.Enum):
    """Row-level request types exposed by the RoMe interface."""

    RD_ROW = "RD_row"
    WR_ROW = "WR_row"


@dataclass
class RowRequest:
    """One row-granularity request handled by the RoMe memory controller.

    Attributes
    ----------
    kind:
        Read or write.
    channel / stack_id / vba / row:
        Target coordinates in the simplified hierarchy (no pseudo channel,
        no bank group, no column).
    valid_bytes:
        Number of bytes actually wanted by the host.  When smaller than the
        effective row size the remainder is overfetch, which the evaluation
        tracks (Section VI-B notes its impact is negligible for LLMs).
    arrival_ns:
        Time the request reached the controller.
    """

    kind: RowRequestKind
    channel: int = 0
    stack_id: int = 0
    vba: int = 0
    row: int = 0
    valid_bytes: int = 4096
    arrival_ns: int = 0
    request_id: int = field(default_factory=lambda: next(_row_request_ids))
    issue_ns: Optional[int] = None
    completion_ns: Optional[int] = None
    #: RAS command-replay generation: 0 for demand reads, n for the n-th
    #: retry of a detected-uncorrectable read (see repro.reliability.ras).
    retry_attempt: int = 0

    @property
    def is_read(self) -> bool:
        return self.kind is RowRequestKind.RD_ROW

    @property
    def is_write(self) -> bool:
        return self.kind is RowRequestKind.WR_ROW

    def latency(self) -> Optional[int]:
        if self.completion_ns is None:
            return None
        return self.completion_ns - self.arrival_ns

    def overfetch_bytes(self, effective_row_bytes: int) -> int:
        """Bytes transferred but not requested by the host."""
        return max(0, effective_row_bytes - self.valid_bytes)


def requests_for_transfer(
    total_bytes: int,
    kind: RowRequestKind,
    effective_row_bytes: int,
    num_channels: int,
    vbas_per_channel: int,
    rows_per_vba: int = 1 << 14,
    start_row: int = 0,
    arrival_ns: int = 0,
) -> List[RowRequest]:
    """Split a bulk sequential transfer into row-granularity requests.

    The transfer is striped across channels first and virtual banks second,
    matching the bandwidth-maximizing address mapping the paper sweeps for
    (Section VI-A).  The final request may be partially valid (overfetch).

    The striping arithmetic is memoized in the global trace cache keyed by
    the full layout tuple (total bytes, row size, channel/VBA geometry,
    start row), so repeated sweep points skip the derivation.  Fresh
    :class:`RowRequest` objects (new request IDs, clean issue/completion
    state) are built on every call, cached or not.
    """
    if total_bytes <= 0:
        return []
    key = ("requests_for_transfer", total_bytes, effective_row_bytes,
           num_channels, vbas_per_channel, rows_per_vba, start_row)
    specs = global_trace_cache().get_or_compute(
        key,
        lambda: _transfer_specs(total_bytes, effective_row_bytes, num_channels,
                                vbas_per_channel, rows_per_vba, start_row),
    )
    return [
        RowRequest(
            kind=kind,
            channel=channel,
            vba=vba,
            row=row,
            valid_bytes=valid,
            arrival_ns=arrival_ns,
        )
        for channel, vba, row, valid in specs
    ]


def _transfer_specs(
    total_bytes: int,
    effective_row_bytes: int,
    num_channels: int,
    vbas_per_channel: int,
    rows_per_vba: int,
    start_row: int,
) -> Tuple[Tuple[int, int, int, int], ...]:
    """Immutable (channel, vba, row, valid_bytes) striping of a transfer."""
    specs: List[Tuple[int, int, int, int]] = []
    remaining = total_bytes
    index = 0
    while remaining > 0:
        channel = index % num_channels
        vba = (index // num_channels) % vbas_per_channel
        row = start_row + index // (num_channels * vbas_per_channel)
        if row >= rows_per_vba:
            raise ValueError("transfer exceeds device capacity for the given layout")
        valid = min(effective_row_bytes, remaining)
        specs.append((channel, vba, row, valid))
        remaining -= valid
        index += 1
    return tuple(specs)


def round_robin_by_channel(requests: List[RowRequest],
                           num_channels: int) -> Iterator[List[RowRequest]]:
    """Group ``requests`` per channel (used by multi-channel simulations)."""
    buckets: List[List[RowRequest]] = [[] for _ in range(num_channels)]
    for request in requests:
        buckets[request.channel % num_channels].append(request)
    return iter(buckets)
