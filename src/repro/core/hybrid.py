"""Hybrid coarse/fine-grained memory system (Section VII discussion).

RoMe is optimized for the coarse, sequential accesses of dense LLM inference.
Workloads with frequent fine-grained accesses -- e.g. DeepSeek Sparse
Attention selecting the top-2048 tokens from a long history -- overfetch badly
at 4 KB granularity.  The paper discusses a heterogeneous system that pairs
RoMe channels with conventional HBM4 channels and steers fine-grained requests
to the latter.  This module provides a first-order model of that design point:
given a workload's mix of coarse and fine accesses it computes the effective
bandwidth of a pure-RoMe, pure-HBM4, and hybrid system, including the
utilization loss when one side of the hybrid sits idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class AccessMix:
    """A workload's split between coarse streaming and fine random bytes."""

    coarse_bytes: float
    fine_bytes: float
    #: Average useful bytes per fine-grained access (e.g. 64 B for DSA's
    #: per-token KV fetches).
    fine_access_bytes: float = 64.0

    @property
    def total_bytes(self) -> float:
        return self.coarse_bytes + self.fine_bytes

    @property
    def fine_fraction(self) -> float:
        if self.total_bytes == 0:
            return 0.0
        return self.fine_bytes / self.total_bytes


@dataclass(frozen=True)
class HybridConfig:
    """A memory system splitting channels between RoMe and HBM4."""

    total_channels: int = 36
    rome_channels: int = 28
    rome_row_bytes: int = 4096
    channel_bandwidth_gbps: float = 64.0

    @property
    def hbm4_channels(self) -> int:
        return self.total_channels - self.rome_channels

    def __post_init__(self) -> None:
        if not 0 <= self.rome_channels <= self.total_channels:
            raise ValueError("rome_channels must be within total_channels")


def effective_time_ns(mix: AccessMix, config: HybridConfig) -> Dict[str, float]:
    """Transfer time of the mix on pure and hybrid systems.

    Fine accesses served by a RoMe channel transfer a whole effective row per
    access (overfetch); served by an HBM4 channel they transfer only what is
    needed.  The hybrid routes each class to its preferred side; the returned
    ``hybrid_balanced`` entry additionally allows the coarse stream to spill
    onto idle HBM4 channels (perfect work stealing), which bounds the benefit.
    """
    bw = config.channel_bandwidth_gbps  # bytes per ns per channel
    total = config.total_channels * bw

    fine_accesses = (
        mix.fine_bytes / mix.fine_access_bytes if mix.fine_access_bytes else 0.0
    )
    fine_bytes_on_rome = fine_accesses * config.rome_row_bytes

    # Pure systems use all channels for everything.
    pure_rome = (mix.coarse_bytes + fine_bytes_on_rome) / total
    pure_hbm4 = mix.total_bytes / total

    # Hybrid: coarse on the RoMe partition, fine on the HBM4 partition.
    rome_bw = config.rome_channels * bw
    hbm4_bw = config.hbm4_channels * bw
    coarse_time = mix.coarse_bytes / rome_bw if rome_bw else float("inf")
    fine_time = mix.fine_bytes / hbm4_bw if hbm4_bw else float("inf")
    hybrid_static = max(coarse_time, fine_time)

    # Work-stealing bound: all bytes at their native granularity, full fabric.
    hybrid_balanced = mix.total_bytes / total

    return {
        "pure_rome_ns": pure_rome,
        "pure_hbm4_ns": pure_hbm4,
        "hybrid_static_ns": hybrid_static,
        "hybrid_balanced_ns": hybrid_balanced,
    }


def best_system(mix: AccessMix, config: HybridConfig | None = None) -> str:
    """Which system finishes the mix first (ties go to the simpler system)."""
    config = config or HybridConfig()
    times = effective_time_ns(mix, config)
    candidates = {
        "rome": times["pure_rome_ns"],
        "hbm4": times["pure_hbm4_ns"],
        "hybrid": times["hybrid_static_ns"],
    }
    return min(candidates, key=candidates.get)


def crossover_fine_fraction(config: HybridConfig | None = None,
                            fine_access_bytes: float = 64.0,
                            total_bytes: float = 1e9) -> float:
    """Fine-traffic fraction at which pure RoMe stops being the best choice.

    Below the returned fraction the overfetch of serving fine accesses at row
    granularity is cheaper than giving up channels to an HBM4 partition;
    above it the hybrid (or pure HBM4) wins.
    """
    config = config or HybridConfig()
    low, high = 0.0, 1.0
    for _ in range(64):
        mid = (low + high) / 2
        mix = AccessMix(
            coarse_bytes=total_bytes * (1 - mid),
            fine_bytes=total_bytes * mid,
            fine_access_bytes=fine_access_bytes,
        )
        if best_system(mix, config) == "rome":
            low = mid
        else:
            high = mid
    return (low + high) / 2
