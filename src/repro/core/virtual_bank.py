"""Virtual bank (VBA) design space.

RoMe removes bank groups and pseudo channels from the MC-DRAM interface and
replaces them with the virtual bank, an organization in which a *single* VBA
can deliver the full channel bandwidth (Section IV-B).  Two orthogonal choices
define the design space:

* how banks are merged into a VBA (Figure 7):
  - ``WIDE_BANK`` (7b): one bank with a doubled internal datapath;
  - ``TANDEM_SAME_BG`` (7c): two banks of the same bank group in tandem;
  - ``INTERLEAVED_DIFF_BG`` (7d): two banks from different bank groups,
    accessed time-multiplexed -- the paper's choice;
* how the two pseudo channels are merged (Figure 8):
  - ``WIDE_PC`` (8a): one PC fetches twice the data;
  - ``LOCKSTEP_PC`` (8b): both PCs operate simultaneously (legacy-channel
    style) -- the paper's choice.

The six combinations all deliver full bandwidth (performance within 3.6 % of
the baseline in the paper) but differ greatly in DRAM-die area overhead; the
``area_overhead_fraction`` property captures that trade-off.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.dram.timing import TimingParameters


class BankMerge(enum.Enum):
    """Figure 7 options for building a VBA out of banks."""

    WIDE_BANK = "wide_bank"                   # Fig. 7(b)
    TANDEM_SAME_BG = "tandem_same_bg"         # Fig. 7(c)
    INTERLEAVED_DIFF_BG = "interleaved_diff_bg"  # Fig. 7(d)


class PseudoChannelMerge(enum.Enum):
    """Figure 8 options for removing the pseudo channel from the interface."""

    WIDE_PC = "wide_pc"          # Fig. 8(a)
    LOCKSTEP_PC = "lockstep_pc"  # Fig. 8(b)


#: Area overhead contributions (fractions of baseline DRAM-die datapath area)
#: for each structural change, calibrated so the worst combination
#: (WIDE_BANK + WIDE_PC) reaches the ~77 % overhead the paper quotes from the
#: fine-grained DRAM literature and the adopted combination costs nothing.
_AREA_COST = {
    "bank_datapath_x2": 0.35,
    "bk_bus_x2": 0.12,
    "io_ctrl_buffer_x2": 0.10,
    "bg_bus_x2": 0.13,
    "gbus_muxes": 0.07,
}


@dataclass(frozen=True)
class VirtualBankConfig:
    """A point in the VBA design space plus the underlying channel geometry."""

    bank_merge: BankMerge = BankMerge.INTERLEAVED_DIFF_BG
    pc_merge: PseudoChannelMerge = PseudoChannelMerge.LOCKSTEP_PC
    base_row_bytes: int = 1024
    base_access_granularity_bytes: int = 32
    num_bank_groups: int = 4
    banks_per_group: int = 4
    num_pseudo_channels: int = 2
    num_stack_ids: int = 4

    # ------------------------------------------------------------- geometry

    @property
    def banks_per_vba(self) -> int:
        """Physical banks (per pseudo channel) combined into one VBA."""
        return 1 if self.bank_merge is BankMerge.WIDE_BANK else 2

    @property
    def pcs_per_vba(self) -> int:
        """Pseudo channels operating in lockstep for one VBA."""
        return 2 if self.pc_merge is PseudoChannelMerge.LOCKSTEP_PC else 1

    @property
    def banks_per_pc_per_sid(self) -> int:
        return self.num_bank_groups * self.banks_per_group

    @property
    def vbas_per_channel_per_sid(self) -> int:
        """Independent VBAs visible to the controller in one channel & SID."""
        per_pc = self.banks_per_pc_per_sid // self.banks_per_vba
        if self.pc_merge is PseudoChannelMerge.LOCKSTEP_PC:
            return per_pc
        # WIDE_PC: the two PCs are controlled as one channel with twice the
        # banks (Figure 8a).
        return per_pc * self.num_pseudo_channels

    @property
    def vbas_per_channel(self) -> int:
        return self.vbas_per_channel_per_sid * self.num_stack_ids

    @property
    def effective_row_bytes(self) -> int:
        """Row size seen by the controller (``AG_MC`` under RoMe)."""
        per_bank_row = self.base_row_bytes
        if self.bank_merge is BankMerge.WIDE_BANK:
            merged = per_bank_row  # same row, wider datapath
        else:
            merged = per_bank_row * 2
        if self.pc_merge is PseudoChannelMerge.LOCKSTEP_PC:
            merged *= 2
        else:
            merged *= 1
        return merged

    @property
    def cas_spacing_ns_factor(self) -> str:
        """Which CAS-to-CAS constraint paces the expanded column train.

        ``WIDE_BANK`` and ``TANDEM_SAME_BG`` fetch double the data per column
        command from one bank (group), so consecutive commands are paced by
        ``tCCDL``; ``INTERLEAVED_DIFF_BG`` alternates bank groups and is paced
        by ``tCCDS``.  Either way the channel sustains its full bandwidth.
        """
        if self.bank_merge is BankMerge.INTERLEAVED_DIFF_BG:
            return "tCCDS"
        return "tCCDL"

    @property
    def bytes_per_cas(self) -> int:
        """Data moved by one expanded column command across the channel.

        Every design point sustains the full channel bandwidth
        (64 B per tCCDS for HBM4-class timing), so the per-command payload is
        the channel rate times the command spacing: 64 B for the interleaved
        design (paced by tCCDS) and 128 B for the wide-bank / tandem designs
        (paced by tCCDL = 2 x tCCDS).
        """
        channel_bytes_per_tccds = (
            self.base_access_granularity_bytes * self.num_pseudo_channels
        )
        if self.bank_merge is BankMerge.INTERLEAVED_DIFF_BG:
            return channel_bytes_per_tccds
        return channel_bytes_per_tccds * 2

    # ----------------------------------------------------------------- area

    @property
    def area_costs(self) -> Dict[str, float]:
        """Structural changes this configuration requires."""
        costs: Dict[str, float] = {}
        if self.bank_merge is BankMerge.WIDE_BANK:
            costs["bank_datapath_x2"] = _AREA_COST["bank_datapath_x2"]
            costs["bk_bus_x2"] = _AREA_COST["bk_bus_x2"]
            costs["io_ctrl_buffer_x2"] = _AREA_COST["io_ctrl_buffer_x2"]
        elif self.bank_merge is BankMerge.TANDEM_SAME_BG:
            costs["io_ctrl_buffer_x2"] = _AREA_COST["io_ctrl_buffer_x2"]
        if self.pc_merge is PseudoChannelMerge.WIDE_PC:
            costs["bg_bus_x2"] = _AREA_COST["bg_bus_x2"]
            costs["gbus_muxes"] = _AREA_COST["gbus_muxes"]
        return costs

    @property
    def area_overhead_fraction(self) -> float:
        """DRAM-die datapath area overhead relative to the baseline."""
        return sum(self.area_costs.values())

    @property
    def requires_dram_core_modification(self) -> bool:
        """True when the internal DRAM array/datapath must change."""
        return bool(self.area_costs)

    # --------------------------------------------------------------- timing

    def data_transfer_ns(self, timing: TimingParameters) -> int:
        """Bus time to stream one effective row at full channel bandwidth."""
        channel_bytes_per_ns = (
            self.base_access_granularity_bytes
            * self.num_pseudo_channels
            // timing.tCCDS
        )
        return self.effective_row_bytes // channel_bytes_per_ns

    def cas_commands_per_row(self) -> int:
        """Number of expanded column commands needed to stream one row."""
        return self.effective_row_bytes // self.bytes_per_cas

    def describe(self) -> str:
        return (
            f"{self.bank_merge.value}+{self.pc_merge.value}: "
            f"row={self.effective_row_bytes} B, "
            f"{self.vbas_per_channel_per_sid} VBAs/ch/SID, "
            f"area +{self.area_overhead_fraction:.0%}"
        )


def paper_vba_config() -> VirtualBankConfig:
    """The configuration RoMe adopts: Figure 7(d) + Figure 8(b)."""
    return VirtualBankConfig(
        bank_merge=BankMerge.INTERLEAVED_DIFF_BG,
        pc_merge=PseudoChannelMerge.LOCKSTEP_PC,
    )


#: All six design-space points explored in Section IV-B.
VBA_DESIGN_SPACE: Tuple[VirtualBankConfig, ...] = tuple(
    VirtualBankConfig(bank_merge=bank_merge, pc_merge=pc_merge)
    for bank_merge in BankMerge
    for pc_merge in PseudoChannelMerge
)


def design_space_summary(timing: TimingParameters | None = None) -> List[Dict[str, object]]:
    """Tabulate the design space (row size, VBAs, area, transfer time)."""
    timing = timing or TimingParameters()
    rows = []
    for config in VBA_DESIGN_SPACE:
        rows.append(
            {
                "bank_merge": config.bank_merge.value,
                "pc_merge": config.pc_merge.value,
                "effective_row_bytes": config.effective_row_bytes,
                "vbas_per_channel_per_sid": config.vbas_per_channel_per_sid,
                "area_overhead_fraction": config.area_overhead_fraction,
                "requires_dram_core_modification":
                    config.requires_dram_core_modification,
                "data_transfer_ns": config.data_transfer_ns(timing),
            }
        )
    return rows
