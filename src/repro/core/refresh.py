"""RoMe refresh handling (Section V-B).

With virtual banks, refreshing either constituent bank blocks the whole VBA.
Instead of issuing one per-bank refresh every ``tREFIpb``, the RoMe controller
issues one refresh *per VBA* every ``2 x tREFIpb`` and the command generator
emits the two REFpb commands back-to-back separated by ``tRREFD``.  This
reduces the stall per VBA from ``2 x tRFCpb`` to ``tRFCpb + tRREFD``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class RefreshStallSummary:
    """Per-VBA refresh stall accounting over one refresh window."""

    naive_stall_ns: int
    paired_stall_ns: int
    interval_ns: int

    @property
    def stall_reduction_ns(self) -> int:
        return self.naive_stall_ns - self.paired_stall_ns

    @property
    def naive_overhead_fraction(self) -> float:
        return self.naive_stall_ns / self.interval_ns

    @property
    def paired_overhead_fraction(self) -> float:
        return self.paired_stall_ns / self.interval_ns


def refresh_stall_comparison(
    timing: Optional[TimingParameters] = None,
    banks_per_vba: int = 2,
    vbas_per_channel: int = 16,
) -> RefreshStallSummary:
    """Compare the naive and paired refresh schemes for one VBA.

    Within each per-VBA refresh period (the refresh command rotation over all
    ``vbas_per_channel`` VBAs of the channel), the naive scheme stalls the VBA
    ``banks_per_vba`` times for ``tRFCpb`` each, while the paired scheme
    (Section V-B) stalls it once for
    ``tRFCpb + (banks_per_vba - 1) x tRREFD``.
    """
    timing = timing or TimingParameters()
    window = banks_per_vba * timing.tREFIpb * max(1, vbas_per_channel)
    naive = banks_per_vba * timing.tRFCpb
    paired = timing.tRFCpb + (banks_per_vba - 1) * timing.tRREFD
    return RefreshStallSummary(
        naive_stall_ns=naive,
        paired_stall_ns=paired,
        interval_ns=window,
    )


@dataclass
class RomeRefreshScheduler:
    """Schedules paired per-VBA refreshes for the RoMe memory controller."""

    timing: TimingParameters
    num_vbas: int
    num_stack_ids: int = 1
    banks_per_vba: int = 2
    max_postponed: int = 4
    _next_due: Dict[tuple, int] = field(default_factory=dict)
    issued: int = 0

    def __post_init__(self) -> None:
        stagger = max(1, self.command_interval())
        offset = 0
        for sid in range(self.num_stack_ids):
            for vba in range(self.num_vbas):
                self._next_due[(sid, vba)] = offset
                offset += stagger

    def command_interval(self) -> int:
        """Spacing between paired refresh commands: ``banks_per_vba x tREFIpb``.

        This is the Section V-B optimization: one refresh command every
        ``2 x tREFIpb`` instead of one every ``tREFIpb``.
        """
        return self.banks_per_vba * self.timing.tREFIpb

    def interval(self) -> int:
        """Refresh period of an individual VBA.

        Rotating one paired refresh every ``command_interval`` over all the
        channel's VBAs brings each VBA back around every
        ``command_interval x num_vbas x num_stack_ids``.
        """
        return self.command_interval() * max(1, self.num_vbas * self.num_stack_ids)

    def stall_ns(self) -> int:
        """VBA stall per paired refresh."""
        return self.timing.tRFCpb + (self.banks_per_vba - 1) * self.timing.tRREFD

    def due(self, now: int) -> List[tuple]:
        """(stack_id, vba) pairs whose refresh deadline has passed."""
        pairs = [key for key, t in self._next_due.items() if now >= t]
        pairs.sort(key=lambda key: self._next_due[key])
        return pairs

    def most_urgent(self, now: int) -> Optional[tuple]:
        pairs = self.due(now)
        return pairs[0] if pairs else None

    def slack_ns(self) -> int:
        """Postponement headroom before a due refresh becomes critical.

        Shared by :meth:`is_critical`, :meth:`next_event_ns`, and the
        burst-train planner's refresh model so the three cannot drift.
        """
        return self.max_postponed * self.interval()

    def due_snapshot(self) -> List[Tuple[tuple, int]]:
        """Read-only ``((stack_id, vba), due_time)`` pairs for planning.

        Due times are pairwise distinct by construction (staggered offsets,
        bumps in whole intervals), so ordering by due time is total.
        """
        return list(self._next_due.items())

    def is_critical(self, key: tuple, now: int) -> bool:
        return now - self._next_due[key] >= self.slack_ns()

    def next_event_ns(self, now: int) -> Optional[int]:
        """Earliest future time a refresh decision can change.

        For each VBA that is not yet due this is its deadline; for one that
        is due but still postponable it is the instant the postponement
        budget runs out (the refresh becomes *critical* and may preempt a
        saturated refresh-FSM pool).  Already-critical VBAs generate no
        future event: they are issueable now and only wait on VBA busy time,
        which the controller tracks separately.
        """
        slack = self.slack_ns()
        best: Optional[int] = None
        for due in self._next_due.values():
            candidate = due if due > now else due + slack
            if candidate > now and (best is None or candidate < best):
                best = candidate
        return best

    @staticmethod
    def track_label(key: tuple) -> str:
        """Per-stack sub-track label for trace events about ``key`` (the
        obs layer renders one track per channel/stack; the VBA index
        travels in the event args)."""
        return f"sid{key[0]}"

    def note_issued(self, key: tuple, now: int) -> None:
        self._next_due[key] += self.interval()
        self.issued += 1

    def refresh_debt(self, now: int) -> int:
        return len(self.due(now))
