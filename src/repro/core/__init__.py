"""RoMe: the row-granularity access memory system (the paper's contribution).

* :mod:`repro.core.interface` -- the row-level request/command interface
  (``RD_row`` / ``WR_row``).
* :mod:`repro.core.virtual_bank` -- the virtual bank (VBA) design space of
  Figures 7 and 8.
* :mod:`repro.core.command_generator` -- the logic-die command generator that
  expands row-level commands into fixed conventional command sequences.
* :mod:`repro.core.timing` -- RoMe's reduced timing-parameter set (Table III).
* :mod:`repro.core.controller` -- the simplified RoMe memory controller
  (Section V-A).
* :mod:`repro.core.refresh` -- the paired per-bank refresh optimization
  (Section V-B).
* :mod:`repro.core.pins` -- C/A pin budget, command issue latency, and the
  channel-expansion analysis (Sections IV-D and IV-E).
"""

from repro.core.interface import RowRequest, RowRequestKind
from repro.core.virtual_bank import (
    BankMerge,
    PseudoChannelMerge,
    VirtualBankConfig,
    VBA_DESIGN_SPACE,
    paper_vba_config,
)
from repro.core.timing import ROME_TIMING, RoMeTimingParameters, derive_rome_timing
from repro.core.command_generator import CommandGenerator, TimedCommand
from repro.core.controller import RoMeControllerConfig, RoMeMemoryController
from repro.core.refresh import RomeRefreshScheduler, refresh_stall_comparison
from repro.core.pins import (
    CommandEncoding,
    PinBudget,
    command_issue_latency_ns,
    hbm4_pin_budget,
    rome_pin_budget,
)

__all__ = [
    "BankMerge",
    "CommandEncoding",
    "CommandGenerator",
    "PinBudget",
    "PseudoChannelMerge",
    "ROME_TIMING",
    "RoMeControllerConfig",
    "RoMeMemoryController",
    "RoMeTimingParameters",
    "RomeRefreshScheduler",
    "RowRequest",
    "RowRequestKind",
    "TimedCommand",
    "VBA_DESIGN_SPACE",
    "VirtualBankConfig",
    "command_issue_latency_ns",
    "derive_rome_timing",
    "hbm4_pin_budget",
    "paper_vba_config",
    "refresh_stall_comparison",
    "rome_pin_budget",
]
