"""The simplified RoMe memory controller (Section V-A).

Compared with the conventional controller, the RoMe MC tracks only:

* four bank states (Idle, Reading, Writing, Refreshing),
* the ten timing parameters of Table III,
* five bank finite-state machines (two for data access, three for refresh),
* a request queue of just a few entries (two suffice to saturate bandwidth),
* a scheduler that serves the oldest ready request while avoiding
  back-to-back commands to the same VBA.

The controller operates directly at row granularity; the conventional command
sequencing lives in the logic-die command generator
(:mod:`repro.core.command_generator`), whose per-expansion command counts are
accumulated here for energy accounting.

Simulation core
---------------
The controller exposes two cycle-exact execution modes:

* the legacy 1-ns core (:meth:`RoMeMemoryController.tick`), which performs one
  scheduling evaluation per nanosecond, and
* the event-driven core (:meth:`RoMeMemoryController.advance_to` /
  :meth:`RoMeMemoryController.next_event_ns`), which computes the next
  *interesting* timestamp (VBA release, data-bus free, command-gap expiry,
  in-flight completion, refresh deadline/criticality) and jumps straight to
  it.  Both cores produce identical statistics; the event core is what the
  default ``run_until_idle``/``run_for`` paths use.
"""

from __future__ import annotations

import bisect
import enum
import heapq
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.core.command_generator import CommandGenerator
from repro.core.interface import RowRequest, RowRequestKind
from repro.core.refresh import RomeRefreshScheduler
from repro.core.timing import ROME_TIMING, RoMeTimingParameters
from repro.core.virtual_bank import VirtualBankConfig, paper_vba_config
from repro.defaults import DEFAULT_DRAIN_HORIZON_NS
from repro.dram.energy import EnergyCounters
from repro.dram.timing import TimingParameters
from repro.latency import LatencyAccumulator

if TYPE_CHECKING:  # runtime import is lazy: repro.reliability pulls
    # repro.core.ecc, whose package __init__ imports this module back.
    from repro.obs.sink import ObsSink
    from repro.reliability.faults import ReliabilityConfig
    from repro.reliability.ras import RasEngine

#: Upper bound on commands per planned burst train (memory/latency bound;
#: the planner simply stops there and a new train picks up on the next
#: evaluation).
_MAX_TRAIN_COMMANDS = 4096


class VbaState(enum.Enum):
    """The four RoMe bank states (Figure 11a)."""

    IDLE = "idle"
    READING = "reading"
    WRITING = "writing"
    REFRESHING = "refreshing"


@dataclass(frozen=True)
class RoMeControllerConfig:
    """Static configuration of the RoMe memory controller."""

    timing: RoMeTimingParameters = field(default_factory=lambda: ROME_TIMING)
    conventional_timing: TimingParameters = field(default_factory=TimingParameters)
    vba: VirtualBankConfig = field(default_factory=paper_vba_config)
    request_queue_depth: int = 4
    num_stack_ids: int = 1
    enable_refresh: bool = True
    max_data_fsms: int = 2
    max_refresh_fsms: int = 3

    @property
    def vbas_per_stack(self) -> int:
        return self.vba.vbas_per_channel_per_sid

    @property
    def num_bank_fsms(self) -> int:
        """Bank FSM instances the controller provisions (5 in the paper)."""
        return self.max_data_fsms + self.max_refresh_fsms


@dataclass
class RoMeControllerStats:
    """Aggregate statistics of one RoMe controller run.

    Read latencies are kept in a bounded streaming accumulator
    (:class:`~repro.latency.LatencyAccumulator`) so long-traffic runs do not
    grow memory linearly; ``average_read_latency`` remains exact.
    """

    served_reads: int = 0
    served_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    overfetch_bytes: int = 0
    read_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    refreshes_issued: int = 0
    peak_active_fsms: int = 0
    data_bus_busy_ns: int = 0
    #: Scheduler evaluations performed (one per ``_step``/event-loop
    #: iteration, one per applied burst train).  Excluded from equality:
    #: it measures the speedup mechanism, not the simulated outcome.
    evaluations: int = field(default=0, compare=False)

    @property
    def read_latencies(self) -> List[int]:
        """Bounded reservoir of read-latency samples (compatibility shim)."""
        return list(self.read_latency.samples)

    @property
    def average_read_latency(self) -> float:
        return self.read_latency.average

    def as_dict(self) -> Dict[str, int]:
        """Scalar counters under their unified-namespace names."""
        return {
            "served_reads": self.served_reads,
            "served_writes": self.served_writes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "overfetch_bytes": self.overfetch_bytes,
            "refreshes_issued": self.refreshes_issued,
            "peak_active_fsms": self.peak_active_fsms,
            "evaluations": self.evaluations,
        }


@dataclass
class _VbaTracker:
    """Dynamic state of one virtual bank."""

    state: VbaState = VbaState.IDLE
    busy_until: int = 0

    def is_free(self, now: int) -> bool:
        return now >= self.busy_until


@dataclass
class RowBurstTrain:
    """An analytically planned run of row commands plus interleaved refreshes.

    ``issues`` holds ``(issue_ns, request)`` for same-kind data commands
    riding the ``start + k * gap`` grid (shifted one nanosecond forward
    past every refresh-consumed evaluation); ``refreshes`` holds
    ``(issue_ns, (stack_id, vba))`` for the paired refreshes the refresh
    scheduler provably issues inside the covered span.  Both lists are in
    strictly increasing time order and never share an instant: the
    controller issues at most one command per evaluation, refresh first.
    """

    issues: List[Tuple[int, RowRequest]]
    refreshes: List[Tuple[int, Tuple[int, int]]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.issues) + len(self.refreshes)

    @property
    def end_ns(self) -> int:
        """Issue instant of the train's last command."""
        last = self.issues[-1][0] if self.issues else -1
        if self.refreshes and self.refreshes[-1][0] > last:
            last = self.refreshes[-1][0]
        return last


class RoMeMemoryController:
    """Row-granularity memory controller for one RoMe channel."""

    def __init__(self, config: Optional[RoMeControllerConfig] = None,
                 channel_id: int = 0,
                 reliability: Optional[ReliabilityConfig] = None,
                 obs: Optional[ObsSink] = None) -> None:
        self.config = config or RoMeControllerConfig()
        self.channel_id = channel_id
        self.timing = self.config.timing
        self.command_generator = CommandGenerator(
            timing=self.config.conventional_timing, vba=self.config.vba
        )
        self.queue: Deque[RowRequest] = deque()
        self._backlog: Deque[RowRequest] = deque()
        self._vbas: Dict[Tuple[int, int], _VbaTracker] = {
            (sid, vba): _VbaTracker()
            for sid in range(self.config.num_stack_ids)
            for vba in range(self.config.vbas_per_stack)
        }
        self.refresh = (
            RomeRefreshScheduler(
                timing=self.config.conventional_timing,
                num_vbas=self.config.vbas_per_stack,
                num_stack_ids=self.config.num_stack_ids,
                banks_per_vba=self.config.vba.banks_per_vba,
            )
            if self.config.enable_refresh
            else None
        )
        self.stats = RoMeControllerStats()
        # Channel-level data-bus bookkeeping: time the bus frees and the
        # direction/stack of the previous row command (for Table III gaps).
        self._bus_free_at = 0
        self._last_was_read: Optional[bool] = None
        self._last_stack: Optional[int] = None
        self._last_issue_ns: Optional[int] = None
        # Busy-VBA bookkeeping: a min-heap of (busy_until, key) plus
        # incremental FSM-occupancy counters, so neither the scheduler nor
        # the event core ever scans all VBAs on the hot path.
        self._busy_heap: List[Tuple[int, Tuple[int, int]]] = []
        self._busy_data_fsms = 0
        self._busy_refresh_fsms = 0
        # Expanded-command counters fed to the energy model.
        self._expanded_activates = 0
        self._expanded_cas = 0
        self._expanded_precharges = 0
        # Precomputed hot-path constants: the Table III gap lookup keyed by
        # (previous_is_read, next_is_read, same_stack), per-kind command
        # durations/occupancies, and the effective row size.
        t = self.timing
        self._gap_table: Dict[Tuple[bool, bool, bool], int] = {
            (True, True, True): t.tR2RS, (True, True, False): t.tR2RR,
            (True, False, True): t.tR2WS, (True, False, False): t.tR2WR,
            (False, True, True): t.tW2RS, (False, True, False): t.tW2RR,
            (False, False, True): t.tW2WS, (False, False, False): t.tW2WR,
        }
        self._duration = {True: t.tRD_row, False: t.tWR_row}
        self._occupancy = {True: t.tR2RS, False: t.tW2WS}
        self._row_bytes = self.config.vba.effective_row_bytes
        # RAS: fault classification plus the retry-replay heap.  With no
        # config (or a zero-rate one) ``_ras_active`` is False and every
        # hook below short-circuits, keeping the baseline code path (fast
        # paths included) bit-identical.
        self.ras: Optional[RasEngine] = None
        self._ras_active = False
        self._retries: List[Tuple[int, int, RowRequest]] = []
        self._retry_seq = 0
        if reliability is not None:
            from repro.reliability.ras import RasEngine as _RasEngine

            self.ras = _RasEngine(
                reliability, self._row_bytes, sorted(self._vbas))
            self._ras_active = self.ras.active
        # Observability: deterministic trace/metrics sink.  ``None`` (the
        # default, and whenever the spec's ObsConfig is disabled) keeps
        # every hook short-circuited on one ``is not None`` check, so the
        # unobserved path stays bit-identical to the pre-obs tree.
        self._obs = obs
        self.now = 0

    # -------------------------------------------------------------- enqueue

    def enqueue(self, request: RowRequest) -> None:
        """Accept one row-granularity request."""
        if request.vba >= self.config.vbas_per_stack:
            raise ValueError(
                f"vba {request.vba} out of range "
                f"(channel has {self.config.vbas_per_stack} VBAs per stack)"
            )
        if request.stack_id >= self.config.num_stack_ids:
            raise ValueError("stack_id out of range for this controller")
        if self._ras_active and self.ras.offline:
            # Graceful degradation: re-stripe traffic aimed at an
            # offlined VBA across the healthy ones (in-flight and queued
            # work drains where it is).
            target = self.ras.remap(
                (request.stack_id, request.vba), request.row)
            request.stack_id, request.vba = target
        self._backlog.append(request)

    # ---------------------------------------------------------------- RAS

    def _schedule_retry(self, request: RowRequest, ready_ns: int) -> None:
        """Queue a command replay of ``request`` at ``ready_ns``."""
        retry = replace(request, arrival_ns=ready_ns, issue_ns=None,
                        completion_ns=None,
                        retry_attempt=request.retry_attempt + 1)
        self._retry_seq += 1
        heapq.heappush(self._retries, (ready_ns, self._retry_seq, retry))

    def _ras_step(self, now: int) -> None:
        """Run scrub passes due by ``now`` and admit ready retries."""
        self.ras.run_scrub(now)
        if self._retries and self._retries[0][0] <= now:
            ready: List[RowRequest] = []
            while self._retries and self._retries[0][0] <= now:
                ready.append(heapq.heappop(self._retries)[2])
            # Replays jump the backlog (retried reads are the oldest
            # traffic in the system); earliest-ready first.
            self._backlog.extendleft(reversed(ready))

    def _ras_wake(self, now: int) -> Optional[int]:
        """Earliest future instant the RAS layer needs an evaluation."""
        wake = self.ras.next_event_ns(now)
        if self._retries:
            ready = self._retries[0][0]
            if wake is None or ready < wake:
                wake = ready
        return wake

    def _fill_queue(self) -> None:
        while self._backlog and len(self.queue) < self.config.request_queue_depth:
            self.queue.append(self._backlog.popleft())

    # -------------------------------------------------------------- FSM use

    def _mark_busy(self, key: Tuple[int, int], tracker: _VbaTracker,
                   state: VbaState, busy_until: int) -> None:
        tracker.state = state
        tracker.busy_until = busy_until
        heapq.heappush(self._busy_heap, (busy_until, key))
        if state is VbaState.REFRESHING:
            self._busy_refresh_fsms += 1
        else:
            self._busy_data_fsms += 1

    def _release_finished(self, now: int) -> None:
        heap = self._busy_heap
        while heap and heap[0][0] <= now:
            _, key = heapq.heappop(heap)
            tracker = self._vbas[key]
            if tracker.state is VbaState.REFRESHING:
                self._busy_refresh_fsms -= 1
            elif tracker.state is not VbaState.IDLE:
                self._busy_data_fsms -= 1
            tracker.state = VbaState.IDLE

    def _active_fsms(self, now: int) -> Tuple[int, int]:
        """(data FSMs, refresh FSMs) currently occupied."""
        self._release_finished(now)
        return self._busy_data_fsms, self._busy_refresh_fsms

    # --------------------------------------------------------------- issue

    def _try_issue_refresh(self, now: int) -> Tuple[bool, Optional[int]]:
        """Try to issue the most urgent refresh.

        Returns ``(issued, wake)``; when blocked, ``wake`` is the earliest
        future time this particular decision could flip (the target VBA
        freeing, or a refresh FSM releasing).  Deadline/criticality
        transitions are tracked by the refresh scheduler's own
        ``next_event_ns``.
        """
        if self.refresh is None:
            return False, None
        key = self.refresh.most_urgent(now)
        if key is None:
            return False, None
        critical = self.refresh.is_critical(key, now)
        # Opportunistic refresh only when the target VBA is idle; critical
        # refresh waits for the VBA to drain but blocks new data commands to
        # it (handled implicitly because the VBA will be marked busy).
        stack_id, vba_index = key
        tracker = self._vbas[(stack_id, vba_index)]
        block = self._refresh_block(now, tracker, critical)
        if block is not None:
            return False, block
        data_fsms, refresh_fsms = self._active_fsms(now)
        self._mark_busy(key, tracker, VbaState.REFRESHING,
                        now + self.refresh.stall_ns())
        self.refresh.note_issued(key, now)
        obs = self._obs
        if obs is not None:
            obs.event(now, "refresh.issue",
                      track=f"{obs.track}/"
                            f"{RomeRefreshScheduler.track_label(key)}",
                      vba=vba_index, critical=critical)
            obs.count(now, "controller.refreshes")
            obs.gauge(now, "refresh.debt", self.refresh.refresh_debt(now))
        if self._ras_active:
            # Reset the VBA's retention clock (retention-fault means
            # scale with time since refresh/scrub).
            self.ras.note_refresh(key, now)
        self.stats.refreshes_issued += 1
        # The command generator's paired-REFpb expansion is fixed and has no
        # observable state, so it is accounted analytically
        # (``refreshes_issued * banks_per_vba`` in ``energy_counters``)
        # rather than materialized per refresh.
        self.stats.peak_active_fsms = max(
            self.stats.peak_active_fsms, data_fsms + refresh_fsms + 1
        )
        return True, None

    def _refresh_block(self, now: int, tracker: _VbaTracker,
                       critical: bool) -> Optional[int]:
        """Why the most-urgent refresh cannot issue at ``now``, as a wake
        time -- the target VBA's release, or the first FSM release when the
        refresh FSMs are saturated (a *critical* refresh bypasses
        saturation).  ``None`` means it is issueable now.  Shared by the
        issue path and the event core's wake bound so the two can never
        diverge.
        """
        if not tracker.is_free(now):
            return tracker.busy_until
        _, refresh_fsms = self._active_fsms(now)
        if refresh_fsms >= self.config.max_refresh_fsms and not critical:
            return self._busy_heap[0][0] if self._busy_heap else now + 1
        return None

    def _feasible_at(self, request: RowRequest, tracker: _VbaTracker) -> int:
        """Earliest instant ``request`` could issue under the current channel
        state: the Table III command gap from the previous issue, the target
        VBA's release, and the shared data bus freeing.  Shared by the issue
        path and the event core's wake bound so the two can never diverge.
        """
        if self._last_issue_ns is None or self._last_was_read is None:
            start = 0
        else:
            start = self._last_issue_ns + self._gap_table[(
                self._last_was_read,
                request.kind is RowRequestKind.RD_ROW,
                self._last_stack == request.stack_id,
            )]
        return max(start, tracker.busy_until, self._bus_free_at)

    def _try_issue_data(self, now: int) -> bool:
        """Issue the oldest ready data request, if any."""
        data_fsms, _ = self._active_fsms(now)
        if data_fsms >= self.config.max_data_fsms:
            return False
        vbas = self._vbas
        for request in self.queue:
            if request.issue_ns is not None:
                continue  # already in flight; the entry frees on completion
            tracker = vbas[(request.stack_id, request.vba)]
            if self._feasible_at(request, tracker) <= now:
                self._issue(request, tracker, now)
                return True
        return False

    def _data_wake(self, now: int) -> Optional[int]:
        """Earliest future instant the request queue could produce an action.

        Candidates, per the event-driven core's soundness argument:

        * each un-issued request's feasibility time
          ``max(command-gap expiry, target-VBA release, bus free)``; when
          the data FSMs are saturated the first issue additionally needs a
          slot, so the bound is ``max(earliest busy-VBA release, earliest
          feasibility)``;
        * when the backlog is non-empty, the earliest time a retirement can
          admit *and* issue a new request, ``max(first completion, bus
          free)`` -- a freshly filled entry cannot start before either;
        * when everything queued is in flight and no backlog remains, the
          last completion (the drain instant ``run_until_idle`` must land
          on exactly).
        """
        data_fsms, _ = self._active_fsms(now)
        fsm_blocked = data_fsms >= self.config.max_data_fsms
        wake: Optional[int] = None
        c_min: Optional[int] = None
        c_max: Optional[int] = None
        has_unissued = False
        vbas = self._vbas
        bus_free_at = self._bus_free_at
        for request in self.queue:
            if request.issue_ns is not None:
                completion = request.completion_ns
                if c_min is None or completion < c_min:
                    c_min = completion
                if c_max is None or completion > c_max:
                    c_max = completion
                continue
            has_unissued = True
            feasible = self._feasible_at(
                request, vbas[(request.stack_id, request.vba)]
            )
            if wake is None or feasible < wake:
                wake = feasible
        if fsm_blocked and wake is not None and self._busy_heap:
            # The first issue also needs a data FSM slot.
            slot_free = self._busy_heap[0][0]
            if slot_free > wake:
                wake = slot_free
        if c_min is not None:
            if self._backlog:
                fill = c_min if c_min > bus_free_at else bus_free_at
                if wake is None or fill < wake:
                    wake = fill
            elif not has_unissued and (wake is None or c_max < wake):
                wake = c_max
        return wake

    def _issue(self, request: RowRequest, tracker: _VbaTracker, now: int) -> None:
        is_read = request.kind is RowRequestKind.RD_ROW
        duration = self._duration[is_read]
        self._mark_busy(
            (request.stack_id, request.vba), tracker,
            VbaState.READING if is_read else VbaState.WRITING,
            now + duration,
        )
        self._bus_free_at = now + self._occupancy[is_read]
        self._last_was_read = is_read
        self._last_stack = request.stack_id
        self._last_issue_ns = now
        request.issue_ns = now
        request.completion_ns = now + duration

        expansion = self.command_generator.summarize(request)
        self._expanded_activates += expansion.activates
        self._expanded_cas += expansion.column_commands
        self._expanded_precharges += expansion.precharges
        self.stats.data_bus_busy_ns += expansion.data_bus_ns

        row_bytes = self._row_bytes
        obs = self._obs
        if obs is not None:
            obs.count(request.completion_ns, "controller.bandwidth_bytes",
                      float(row_bytes))
        if is_read:
            self.stats.served_reads += 1
            self.stats.bytes_read += row_bytes
            self.stats.read_latency.record(request.completion_ns - request.arrival_ns)
            if self._ras_active:
                # Classify the read at its issue instant (the draw key);
                # a DUE verdict schedules a command replay after the data
                # would have returned, plus deterministic backoff.
                offlined = self.ras.stats.offlined_banks
                verdict = self.ras.on_read(
                    (request.stack_id, request.vba), request.row, now,
                    attempt=request.retry_attempt)
                if verdict.retry_delay_ns is not None:
                    self._schedule_retry(
                        request,
                        request.completion_ns + verdict.retry_delay_ns)
                if obs is not None:
                    outcome = verdict.outcome.value
                    if outcome != "clean":
                        obs.count(now, f"ras.{outcome}")
                    if verdict.retry_delay_ns is not None:
                        obs.event(now, "ras.retry",
                                  delay_ns=verdict.retry_delay_ns)
                    if verdict.spared_now:
                        obs.event(now, "ras.spare")
                    if self.ras.stats.offlined_banks > offlined:
                        obs.event(now, "ras.offline")
        else:
            self.stats.served_writes += 1
            self.stats.bytes_written += row_bytes
        self.stats.overfetch_bytes += request.overfetch_bytes(row_bytes)

        self.stats.peak_active_fsms = max(
            self.stats.peak_active_fsms,
            self._busy_data_fsms + self._busy_refresh_fsms,
        )

    # ------------------------------------------------------------------ tick

    def _retire_completed(self, now: int) -> None:
        """Free queue entries whose in-flight request has completed.

        The request queue models a CAM whose entries track in-flight
        requests until their data transfer finishes; this is what makes a
        two-entry queue the minimum for full bandwidth (Section V-A).
        Retirement rebuilds the queue in one pass (no O(n) ``deque.remove``
        per retired entry).
        """
        queue = self.queue
        for request in queue:
            if request.completion_ns is not None and now >= request.completion_ns:
                break
        else:
            return
        self.queue = deque(
            request for request in queue
            if request.completion_ns is None or now < request.completion_ns
        )

    def _step(self, now: int) -> bool:
        """One scheduling evaluation at ``now``; True if a command issued."""
        self.stats.evaluations += 1
        if self._ras_active:
            self._ras_step(now)
        self._release_finished(now)
        self._retire_completed(now)
        self._fill_queue()
        issued, _ = self._try_issue_refresh(now)
        if not issued:
            issued = self._try_issue_data(now)
        if issued and self._obs is not None:
            self._note_evaluation(now)
        return issued

    def _note_evaluation(self, now: int) -> None:
        """Obs hook for one decision-bearing scheduler evaluation.

        Only evaluations that issue a command are traced (the caller
        checks the gate): a no-op wake-up depends on which boundary
        instants the advance loop happens to land on -- a checkpoint cut
        lands on its ``at_ns`` and so evaluates once more than the
        uninterrupted run -- and recording it would break cut/resume
        byte-identity.  ``stats.evaluations`` still counts every
        evaluation; it is ``compare=False`` for the same reason.
        """
        obs = self._obs
        obs.event(now, "scheduler.eval")
        obs.count(now, "controller.evaluations")
        obs.gauge(now, "controller.queue_depth",
                  len(self.queue) + len(self._backlog))

    def tick(self) -> None:
        """Advance the controller by one nanosecond (legacy tick core)."""
        self._step(self.now)
        self.now += 1

    # ------------------------------------------------------- event-driven core

    def _refresh_wake(self, now: int) -> Optional[int]:
        """Earliest future instant the refresh path could act (read-only)."""
        if self.refresh is None:
            return None
        wake = self.refresh.next_event_ns(now)
        key = self.refresh.most_urgent(now)
        if key is not None:
            block = self._refresh_block(
                now, self._vbas[key], self.refresh.is_critical(key, now)
            )
            hint = now if block is None else block
            if wake is None or hint < wake:
                wake = hint
        return wake

    def next_event_ns(self) -> Optional[int]:
        """Earliest instant >= now at which this controller might act.

        Considers un-issued request feasibility (command-gap expiry, target
        VBA release, bus free), FSM releases, retirements that admit backlog
        entries, the drain instant, and refresh deadlines (including the
        postponement-exhausted criticality transition).  Returns ``None``
        when the controller is fully idle with refresh disabled.
        """
        now = self.now
        wake = self._data_wake(now)
        refresh_wake = self._refresh_wake(now)
        if refresh_wake is not None and (wake is None or refresh_wake < wake):
            wake = refresh_wake
        if self._ras_active:
            ras_wake = self._ras_wake(now)
            if ras_wake is not None and (wake is None or ras_wake < wake):
                wake = ras_wake
        return wake

    # --------------------------------------------------------- burst trains

    def _plan_burst_train(self, now: int,
                          target_ns: int) -> Optional[RowBurstTrain]:
        """Plan a run of same-kind row commands riding the ``gap`` grid.

        Preconditions (any failure returns ``None`` and the caller falls
        back to single-step evaluation, so results stay bit-identical):

        * some command (the FIFO head, or a refresh) provably issues *now*;
        * every train member shares the head's kind and stack ID, so the
          inter-command gap is the constant same-kind spacing ``g`` -- which
          also equals the channel-bus occupancy, making the issue grid
          exactly ``now + k*g`` apart from refresh displacement;
        * no other Table III gap is smaller than ``g`` (gap domination), so
          no queued request of a different kind/stack can become feasible
          between grid points and overtake the FIFO order;
        * each member's VBA is free at its slot and a data FSM is available
          (modeled with the planned completions; in-flight commands are
          carried in), and backlog members have queue space by their slot.

        Refresh is modeled, not avoided: the scheduler's deadlines are
        copied into a min-heap and the most urgent target's issue instant
        -- the earliest time it is due, its VBA is free, and a refresh FSM
        is available (or the postponement budget has run out, which
        bypasses FSM saturation) -- is interleaved with the data grid in
        time order, refresh winning ties because ``_step`` tries it first.
        A refresh consumes its evaluation instant, so a data command
        landing on the same nanosecond shifts one forward, exactly as the
        per-nanosecond core behaves.  The train ends at the first instant
        the model cannot vouch for (kind/stack change, VBA still busy --
        possibly because a planned refresh stalled it -- FSM saturation, or
        queue-capacity stall): past that point a younger request could
        legally overtake, so the caller's single-step path takes over.
        """
        queue = self.queue
        unissued = [r for r in queue if r.issue_ns is None]
        if not unissued:
            return None
        head = unissued[0]
        is_read = head.kind is RowRequestKind.RD_ROW
        kind = head.kind
        stack = head.stack_id
        gap_table = self._gap_table
        g = gap_table[(is_read, is_read, True)]
        if g <= 0 or any(
            gap_table[(is_read, next_read, same_stack)] < g
            for next_read in (True, False)
            for same_stack in (True, False)
        ):
            return None
        last_allowed = target_ns - 1
        if last_allowed < now:
            return None

        vbas = self._vbas
        duration = self._duration[is_read]
        occupancy_ns = self._occupancy[is_read]
        capacity = self.config.request_queue_depth
        max_fsms = self.config.max_data_fsms

        refresh = self.refresh
        due_heap: List[Tuple[int, Tuple[int, int]]] = []
        if refresh is not None:
            due_heap = [(due, key) for key, due in refresh.due_snapshot()]
            heapq.heapify(due_heap)
            slack = refresh.slack_ns()
            stall = refresh.stall_ns()
            interval = refresh.interval()
            max_ref_fsms = self.config.max_refresh_fsms
            # Future release instants of VBAs currently refreshing (the
            # modeled refresh-FSM pool; planned refreshes are merged in).
            ref_releases = sorted(
                busy_until for busy_until, key in self._busy_heap
                if busy_until > now
                and vbas[key].state is VbaState.REFRESHING
            )

        inflight = sorted(
            r.completion_ns for r in queue if r.issue_ns is not None
        )
        n_inflight = len(inflight)
        occupancy = len(queue)
        backlog_iter = iter(self._backlog)

        issues: List[Tuple[int, RowRequest]] = []
        refreshes: List[Tuple[int, Tuple[int, int]]] = []
        vba_busy: Dict[Tuple[int, int], int] = {}
        completions: Deque[int] = deque()
        retired_inflight = 0
        next_unissued = 0
        last_action = now - 1
        # Every instant < ``safe_until`` is provably free of unmodeled data
        # issues: it is history (< now), within a committed issue's gap
        # shadow (gap domination bounds *any* next data command, so a
        # younger request of a different kind cannot overtake there), or an
        # evaluation a planned refresh consumes.  Committing any action on
        # or past ``safe_until`` would leave an instant where the per-step
        # scheduler might act unmodeled, so the train ends instead.
        safe_until = now
        # Modeled channel-gap state, seeded live, advanced per planned issue
        # with the same fields ``_feasible_at`` / ``_issue`` read and write.
        last_issue_ns = self._last_issue_ns
        last_was_read = self._last_was_read
        last_stack = self._last_stack
        bus_free = self._bus_free_at
        pending: Optional[RowRequest] = None
        pending_from_backlog = False

        def vba_free_at(key: Tuple[int, int]) -> int:
            busy = vba_busy.get(key)
            if busy is None:
                busy = vbas[key].busy_until
            return busy

        while len(issues) + len(refreshes) < _MAX_TRAIN_COMMANDS:
            # -- next data instant (strict FIFO: queue order, then backlog)
            if pending is None:
                if next_unissued < len(unissued):
                    pending = unissued[next_unissued]
                    pending_from_backlog = False
                else:
                    pending = next(backlog_iter, None)
                    pending_from_backlog = True
            if pending is None or pending.kind is not kind \
                    or pending.stack_id != stack:
                # Data side exhausted or no longer same-kind: the FIFO
                # continuation is no longer provable, so the train (data
                # and refresh alike) ends here.
                break
            if last_issue_ns is None or last_was_read is None:
                start = 0
            else:
                start = last_issue_ns + gap_table[(
                    last_was_read, is_read, last_stack == pending.stack_id,
                )]
            d_t = max(start, bus_free, last_action + 1, now)

            # -- next refresh instant (most-urgent target evolution) ------
            r_t = None
            if due_heap:
                due, rkey = due_heap[0]
                base = max(due, last_action + 1, now, vba_free_at(rkey))
                # ``ref_releases`` is kept sorted, so the number of refresh
                # FSMs still busy after ``base`` is a bisection away.
                active = len(ref_releases) - bisect.bisect_right(ref_releases,
                                                                 base)
                if active < max_ref_fsms:
                    fsm_t = base
                else:
                    fsm_t = ref_releases[-max_ref_fsms]
                # Criticality (postponement budget exhausted) bypasses
                # refresh-FSM saturation, mirroring ``_refresh_block``.
                r_t = min(fsm_t, max(base, due + slack))

            if r_t is not None and r_t <= d_t:
                if r_t > last_allowed or r_t > safe_until:
                    break
                heapq.heapreplace(due_heap, (due + interval, rkey))
                refreshes.append((r_t, rkey))
                vba_busy[rkey] = r_t + stall
                bisect.insort(ref_releases, r_t + stall)
                # The refresh consumes this evaluation (``_step`` tries it
                # first and issues at most one command per instant).
                safe_until = max(safe_until, r_t + 1)
                last_action = r_t
                continue

            if d_t > last_allowed or d_t > safe_until:
                break
            while (retired_inflight < n_inflight
                   and inflight[retired_inflight] <= d_t):
                retired_inflight += 1
                occupancy -= 1
            while completions and completions[0] <= d_t:
                completions.popleft()
                occupancy -= 1
            if pending_from_backlog and occupancy >= capacity:
                break
            dkey = (pending.stack_id, pending.vba)
            if vba_free_at(dkey) > d_t:
                break
            if (n_inflight - retired_inflight) + len(completions) \
                    >= max_fsms:
                break
            issues.append((d_t, pending))
            if pending_from_backlog:
                occupancy += 1
            else:
                next_unissued += 1
            completions.append(d_t + duration)
            vba_busy[dkey] = d_t + duration
            last_issue_ns = d_t
            last_was_read = is_read
            last_stack = pending.stack_id
            bus_free = d_t + occupancy_ns
            # Gap domination: no data command of any kind can issue before
            # ``d_t + g``, so the shadow extends the proven-safe span.
            safe_until = max(safe_until, d_t + g)
            last_action = d_t
            pending = None

        if len(issues) < 2:
            return None
        return RowBurstTrain(issues=issues, refreshes=refreshes)

    def _apply_burst_train(self, train: RowBurstTrain) -> None:
        """Apply a planned train in one scheduler evaluation.

        Each command replays the ordinary release/retire/fill/issue sequence
        at its planned instant (so statistics, energy counters, the latency
        accumulator, and FSM peaks come out of the very same code paths the
        per-step core uses); data feasibility is re-validated per command,
        refreshes replay through :meth:`_try_issue_refresh` against the
        live refresh scheduler, and any planner divergence raises instead
        of corrupting results.
        """
        vbas = self._vbas
        max_fsms = self.config.max_data_fsms
        issues, refreshes = train.issues, train.refreshes
        di = ri = 0
        while di < len(issues) or ri < len(refreshes):
            take_refresh = ri < len(refreshes) and (
                di >= len(issues) or refreshes[ri][0] <= issues[di][0]
            )
            if take_refresh:
                t_k, key = refreshes[ri]
                ri += 1
                self._release_finished(t_k)
                self._retire_completed(t_k)
                self._fill_queue()
                issued = False
                if self.refresh is not None \
                        and self.refresh.most_urgent(t_k) == key:
                    issued, _ = self._try_issue_refresh(t_k)
                if not issued:
                    raise RuntimeError(
                        f"burst-train refresh plan diverged from scheduler "
                        f"state at t={t_k}"
                    )
                continue
            t_k, request = issues[di]
            di += 1
            self._release_finished(t_k)
            self._retire_completed(t_k)
            self._fill_queue()
            tracker = vbas[(request.stack_id, request.vba)]
            if (self._feasible_at(request, tracker) > t_k
                    or self._busy_data_fsms >= max_fsms):
                raise RuntimeError(
                    f"burst-train plan diverged from controller state at "
                    f"t={t_k}"
                )
            self._issue(request, tracker, t_k)
        obs = self._obs
        if obs is not None and train.count:
            start = train.issues[0][0] if train.issues else train.end_ns
            if train.refreshes and train.refreshes[0][0] < start:
                start = train.refreshes[0][0]
            obs.span(start, max(train.end_ns - start, 1), "train.apply",
                     steps=train.count)
            obs.count(train.end_ns, "controller.evaluations")
        self.stats.evaluations += 1
        self.now = train.end_ns + 1

    def _advance(self, target_ns: int, stop_when_idle: bool = False) -> None:
        """Event-driven advance to ``target_ns`` (or until drained).

        Saturated spans take the burst-train fast path: when the next run
        of decisions is provably a same-kind row-command train -- including
        the paired refreshes the refresh scheduler would interleave with it
        (see :meth:`_plan_burst_train`) -- the whole run is planned and
        applied in one scheduler evaluation and time jumps past it.  Trains
        are truncated at ``target_ns`` so externally scheduled arrivals
        still land cycle-exactly.
        """
        ras_active = self._ras_active
        while self.now < target_ns:
            now = self.now
            if ras_active:
                self._ras_step(now)
            self._release_finished(now)
            self._retire_completed(now)
            self._fill_queue()
            # The burst-train planner models only data + refresh state, not
            # mid-train retry admissions or scrub instants, so active RAS
            # pins the event core to single-step evaluation (which the
            # equivalence tests prove matches the tick core under faults).
            train = None if ras_active \
                else self._plan_burst_train(now, target_ns)
            if train is not None:
                if self._obs is not None:
                    self._obs.event(now, "train.plan", steps=train.count)
                self._apply_burst_train(train)
                if stop_when_idle and not (self._backlog or self.queue):
                    return
                continue
            self.stats.evaluations += 1
            issued_refresh, refresh_hint = self._try_issue_refresh(now)
            issued_data = False
            if not issued_refresh:
                # A data issue needs no special-casing here: the post-step
                # ``_data_wake`` recomputation below already reflects it.
                issued_data = self._try_issue_data(now)
            if (issued_refresh or issued_data) and self._obs is not None:
                self._note_evaluation(now)
            if stop_when_idle and not (self._backlog or self.queue
                                       or self._retries):
                self.now = now + 1
                return
            if issued_refresh:
                # A data command may become issueable the very next
                # nanosecond (refresh and data share the one-command-per-ns
                # evaluation), so do not skip past it.
                self.now = now + 1
                continue
            # The queue-side bound is recomputed after a data issue, so the
            # jump target reflects the post-issue gap/bus/VBA state; the
            # pre-issue refresh hint stays sound (a data issue can only
            # delay the refresh path via state already in the candidates).
            wake = self._data_wake(now)
            if self.refresh is not None:
                if refresh_hint is not None and (wake is None or refresh_hint < wake):
                    wake = refresh_hint
                due = self.refresh.next_event_ns(now)
                if due is not None and (wake is None or due < wake):
                    wake = due
            if ras_active:
                ras_wake = self._ras_wake(now)
                if ras_wake is not None and (wake is None or ras_wake < wake):
                    wake = ras_wake
            if wake is None:
                jump = target_ns
            else:
                jump = min(max(wake, now + 1), target_ns)
            if jump == target_ns and target_ns - 1 > now:
                # Settle bookkeeping (releases/retirements/fills) that the
                # legacy core would have performed on the skipped span, so
                # queue state at the boundary is tick-identical.  No command
                # can issue in the span -- ``wake`` bounds that.
                settle = target_ns - 1
                self._release_finished(settle)
                self._retire_completed(settle)
                self._fill_queue()
            self.now = jump

    def advance_to(self, target_ns: int) -> None:
        """Advance to ``target_ns`` exactly, skipping event-free spans."""
        self._advance(target_ns)

    # ------------------------------------------------------------------- run

    def run_until_idle(self, max_ns: int = DEFAULT_DRAIN_HORIZON_NS,
                       event_driven: bool = True) -> int:
        while self._backlog or self.queue or self._retries:
            if self.now >= max_ns:
                raise RuntimeError("RoMe controller did not drain in time")
            if event_driven:
                self._advance(max_ns, stop_when_idle=True)
            else:
                self.tick()
        # Let the final in-flight command complete.
        self.now = max(
            self.now, max(tracker.busy_until for tracker in self._vbas.values())
        )
        return self.now

    def run_for(self, duration_ns: int, event_driven: bool = True) -> None:
        end = self.now + duration_ns
        if event_driven:
            self.advance_to(end)
        else:
            while self.now < end:
                self.tick()

    # ----------------------------------------------------------------- stats

    @property
    def queue_occupancy(self) -> int:
        return len(self.queue)

    @property
    def outstanding_requests(self) -> int:
        return len(self.queue) + len(self._backlog) + len(self._retries)

    def bandwidth_utilization(self) -> float:
        """Fraction of peak channel bandwidth delivered so far."""
        if self.now == 0:
            return 0.0
        timing = self.config.conventional_timing
        peak = (
            self.config.vba.base_access_granularity_bytes
            * self.config.vba.num_pseudo_channels
            / timing.tCCDS
        )
        delivered = (self.stats.bytes_read + self.stats.bytes_written) / self.now
        return delivered / peak

    def energy_counters(self) -> EnergyCounters:
        """Counters for the energy model, including command-generator work."""
        interface_commands = (
            self.stats.served_reads
            + self.stats.served_writes
            + self.stats.refreshes_issued
        )
        return EnergyCounters(
            activates=self._expanded_activates,
            precharges=self._expanded_precharges,
            reads_bytes=self.stats.bytes_read,
            writes_bytes=self.stats.bytes_written,
            interface_commands=interface_commands,
            refreshes=self.stats.refreshes_issued * self.config.vba.banks_per_vba,
            row_command_expansions=self.command_generator.expansions,
            elapsed_ns=float(self.now),
            num_channels=1,
            row_bytes=self.config.conventional_timing.row_size_bytes,
        )
