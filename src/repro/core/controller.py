"""The simplified RoMe memory controller (Section V-A).

Compared with the conventional controller, the RoMe MC tracks only:

* four bank states (Idle, Reading, Writing, Refreshing),
* the ten timing parameters of Table III,
* five bank finite-state machines (two for data access, three for refresh),
* a request queue of just a few entries (two suffice to saturate bandwidth),
* a scheduler that serves the oldest ready request while avoiding
  back-to-back commands to the same VBA.

The controller operates directly at row granularity; the conventional command
sequencing lives in the logic-die command generator
(:mod:`repro.core.command_generator`), whose per-expansion command counts are
accumulated here for energy accounting.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.command_generator import CommandGenerator
from repro.core.interface import RowRequest, RowRequestKind
from repro.core.refresh import RomeRefreshScheduler
from repro.core.timing import ROME_TIMING, RoMeTimingParameters
from repro.core.virtual_bank import VirtualBankConfig, paper_vba_config
from repro.dram.energy import EnergyCounters
from repro.dram.timing import TimingParameters


class VbaState(enum.Enum):
    """The four RoMe bank states (Figure 11a)."""

    IDLE = "idle"
    READING = "reading"
    WRITING = "writing"
    REFRESHING = "refreshing"


@dataclass(frozen=True)
class RoMeControllerConfig:
    """Static configuration of the RoMe memory controller."""

    timing: RoMeTimingParameters = field(default_factory=lambda: ROME_TIMING)
    conventional_timing: TimingParameters = field(default_factory=TimingParameters)
    vba: VirtualBankConfig = field(default_factory=paper_vba_config)
    request_queue_depth: int = 4
    num_stack_ids: int = 1
    enable_refresh: bool = True
    max_data_fsms: int = 2
    max_refresh_fsms: int = 3

    @property
    def vbas_per_stack(self) -> int:
        return self.vba.vbas_per_channel_per_sid

    @property
    def num_bank_fsms(self) -> int:
        """Bank FSM instances the controller provisions (5 in the paper)."""
        return self.max_data_fsms + self.max_refresh_fsms


@dataclass
class RoMeControllerStats:
    """Aggregate statistics of one RoMe controller run."""

    served_reads: int = 0
    served_writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    overfetch_bytes: int = 0
    read_latencies: List[int] = field(default_factory=list)
    refreshes_issued: int = 0
    peak_active_fsms: int = 0
    data_bus_busy_ns: int = 0

    @property
    def average_read_latency(self) -> float:
        if not self.read_latencies:
            return 0.0
        return sum(self.read_latencies) / len(self.read_latencies)


@dataclass
class _VbaTracker:
    """Dynamic state of one virtual bank."""

    state: VbaState = VbaState.IDLE
    busy_until: int = 0

    def is_free(self, now: int) -> bool:
        return now >= self.busy_until


class RoMeMemoryController:
    """Row-granularity memory controller for one RoMe channel."""

    def __init__(self, config: Optional[RoMeControllerConfig] = None,
                 channel_id: int = 0) -> None:
        self.config = config or RoMeControllerConfig()
        self.channel_id = channel_id
        self.timing = self.config.timing
        self.command_generator = CommandGenerator(
            timing=self.config.conventional_timing, vba=self.config.vba
        )
        self.queue: Deque[RowRequest] = deque()
        self._backlog: Deque[RowRequest] = deque()
        self._vbas: Dict[Tuple[int, int], _VbaTracker] = {
            (sid, vba): _VbaTracker()
            for sid in range(self.config.num_stack_ids)
            for vba in range(self.config.vbas_per_stack)
        }
        self.refresh = (
            RomeRefreshScheduler(
                timing=self.config.conventional_timing,
                num_vbas=self.config.vbas_per_stack,
                num_stack_ids=self.config.num_stack_ids,
                banks_per_vba=self.config.vba.banks_per_vba,
            )
            if self.config.enable_refresh
            else None
        )
        self.stats = RoMeControllerStats()
        # Channel-level data-bus bookkeeping: time the bus frees and the
        # direction/stack of the previous row command (for Table III gaps).
        self._bus_free_at = 0
        self._last_was_read: Optional[bool] = None
        self._last_stack: Optional[int] = None
        self._last_issue_ns: Optional[int] = None
        # Expanded-command counters fed to the energy model.
        self._expanded_activates = 0
        self._expanded_cas = 0
        self._expanded_precharges = 0
        self.now = 0

    # -------------------------------------------------------------- enqueue

    def enqueue(self, request: RowRequest) -> None:
        """Accept one row-granularity request."""
        if request.vba >= self.config.vbas_per_stack:
            raise ValueError(
                f"vba {request.vba} out of range "
                f"(channel has {self.config.vbas_per_stack} VBAs per stack)"
            )
        if request.stack_id >= self.config.num_stack_ids:
            raise ValueError("stack_id out of range for this controller")
        self._backlog.append(request)

    def _fill_queue(self) -> None:
        while self._backlog and len(self.queue) < self.config.request_queue_depth:
            self.queue.append(self._backlog.popleft())

    # -------------------------------------------------------------- FSM use

    def _active_fsms(self, now: int) -> Tuple[int, int]:
        """(data FSMs, refresh FSMs) currently occupied."""
        data = sum(
            1 for tracker in self._vbas.values()
            if tracker.state in (VbaState.READING, VbaState.WRITING)
            and not tracker.is_free(now)
        )
        refreshing = sum(
            1 for tracker in self._vbas.values()
            if tracker.state is VbaState.REFRESHING and not tracker.is_free(now)
        )
        return data, refreshing

    def _release_finished(self, now: int) -> None:
        for tracker in self._vbas.values():
            if tracker.state is not VbaState.IDLE and tracker.is_free(now):
                tracker.state = VbaState.IDLE

    # --------------------------------------------------------------- issue

    def _command_gap(self, request: RowRequest, now: int) -> int:
        """Earliest time ``request`` may start on the shared data bus."""
        if self._last_issue_ns is None or self._last_was_read is None:
            return now
        same_stack = self._last_stack == request.stack_id
        gap = self.timing.gap(
            previous_is_read=self._last_was_read,
            next_is_read=request.is_read,
            same_stack=same_stack,
        )
        return max(now, self._last_issue_ns + gap)

    def _try_issue_refresh(self, now: int) -> bool:
        if self.refresh is None:
            return False
        key = self.refresh.most_urgent(now)
        if key is None:
            return False
        critical = self.refresh.is_critical(key, now)
        # Opportunistic refresh only when the target VBA is idle; critical
        # refresh waits for the VBA to drain but blocks new data commands to
        # it (handled implicitly because the VBA will be marked busy).
        stack_id, vba_index = key
        tracker = self._vbas[(stack_id, vba_index)]
        if not tracker.is_free(now):
            return False
        data_fsms, refresh_fsms = self._active_fsms(now)
        if refresh_fsms >= self.config.max_refresh_fsms and not critical:
            return False
        tracker.state = VbaState.REFRESHING
        tracker.busy_until = now + self.refresh.stall_ns()
        self.refresh.note_issued(key, now)
        self.stats.refreshes_issued += 1
        expansion = self.command_generator.expand_refresh(
            self.channel_id, stack_id, vba_index
        )
        self.stats.peak_active_fsms = max(
            self.stats.peak_active_fsms, data_fsms + refresh_fsms + 1
        )
        return True

    def _try_issue_data(self, now: int) -> bool:
        data_fsms, refresh_fsms = self._active_fsms(now)
        if data_fsms >= self.config.max_data_fsms:
            return False
        for request in list(self.queue):
            if request.issue_ns is not None:
                continue  # already in flight; the entry frees on completion
            tracker = self._vbas[(request.stack_id, request.vba)]
            if not tracker.is_free(now):
                continue
            start = self._command_gap(request, now)
            if start > now or self._bus_free_at > now:
                continue
            self._issue(request, tracker, now)
            return True
        return False

    def _issue(self, request: RowRequest, tracker: _VbaTracker, now: int) -> None:
        timing = self.timing
        duration = timing.duration(request.is_read)
        occupancy = timing.gap(
            previous_is_read=request.is_read,
            next_is_read=request.is_read,
            same_stack=True,
        )
        tracker.state = VbaState.READING if request.is_read else VbaState.WRITING
        tracker.busy_until = now + duration
        self._bus_free_at = now + occupancy
        self._last_was_read = request.is_read
        self._last_stack = request.stack_id
        self._last_issue_ns = now
        request.issue_ns = now
        request.completion_ns = now + duration

        expansion = self.command_generator.expand(request)
        self._expanded_activates += expansion.activates
        self._expanded_cas += expansion.column_commands
        self._expanded_precharges += expansion.precharges
        self.stats.data_bus_busy_ns += expansion.data_bus_ns

        row_bytes = self.config.vba.effective_row_bytes
        if request.is_read:
            self.stats.served_reads += 1
            self.stats.bytes_read += row_bytes
            self.stats.read_latencies.append(request.completion_ns - request.arrival_ns)
        else:
            self.stats.served_writes += 1
            self.stats.bytes_written += row_bytes
        self.stats.overfetch_bytes += request.overfetch_bytes(row_bytes)

        data_fsms, refresh_fsms = self._active_fsms(now)
        self.stats.peak_active_fsms = max(
            self.stats.peak_active_fsms, data_fsms + refresh_fsms
        )

    # ------------------------------------------------------------------ tick

    def _retire_completed(self, now: int) -> None:
        """Free queue entries whose in-flight request has completed.

        The request queue models a CAM whose entries track in-flight
        requests until their data transfer finishes; this is what makes a
        two-entry queue the minimum for full bandwidth (Section V-A).
        """
        for request in list(self.queue):
            if request.completion_ns is not None and now >= request.completion_ns:
                self.queue.remove(request)

    def tick(self) -> None:
        """Advance the controller by one nanosecond."""
        now = self.now
        self._release_finished(now)
        self._retire_completed(now)
        self._fill_queue()
        if not self._try_issue_refresh(now):
            self._try_issue_data(now)
        self.now = now + 1

    def run_until_idle(self, max_ns: int = 50_000_000) -> int:
        while self._backlog or self.queue:
            if self.now >= max_ns:
                raise RuntimeError("RoMe controller did not drain in time")
            self.tick()
        # Let the final in-flight command complete.
        self.now = max(
            self.now, max(tracker.busy_until for tracker in self._vbas.values())
        )
        return self.now

    def run_for(self, duration_ns: int) -> None:
        end = self.now + duration_ns
        while self.now < end:
            self.tick()

    # ----------------------------------------------------------------- stats

    @property
    def queue_occupancy(self) -> int:
        return len(self.queue)

    @property
    def outstanding_requests(self) -> int:
        return len(self.queue) + len(self._backlog)

    def bandwidth_utilization(self) -> float:
        """Fraction of peak channel bandwidth delivered so far."""
        if self.now == 0:
            return 0.0
        timing = self.config.conventional_timing
        peak = (
            self.config.vba.base_access_granularity_bytes
            * self.config.vba.num_pseudo_channels
            / timing.tCCDS
        )
        delivered = (self.stats.bytes_read + self.stats.bytes_written) / self.now
        return delivered / peak

    def energy_counters(self) -> EnergyCounters:
        """Counters for the energy model, including command-generator work."""
        interface_commands = (
            self.stats.served_reads
            + self.stats.served_writes
            + self.stats.refreshes_issued
        )
        return EnergyCounters(
            activates=self._expanded_activates,
            precharges=self._expanded_precharges,
            reads_bytes=self.stats.bytes_read,
            writes_bytes=self.stats.bytes_written,
            interface_commands=interface_commands,
            refreshes=self.stats.refreshes_issued * self.config.vba.banks_per_vba,
            row_command_expansions=self.command_generator.expansions,
            elapsed_ns=float(self.now),
            num_channels=1,
            row_bytes=self.config.conventional_timing.row_size_bytes,
        )
