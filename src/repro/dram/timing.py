"""DRAM timing parameter sets.

All simulator time is expressed in integer nanoseconds, matching the
resolution of the timing parameters the RoMe paper adopts for HBM4 (Table V).
Because JEDEC has not finalized HBM4 timings, the paper (and therefore this
reproduction) uses values from prior studies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class TimingParameters:
    """Conventional HBM timing parameters (Table II / Table V).

    All values are in nanoseconds.  ``burst_ns`` is the time one column access
    occupies the pseudo-channel data bus (32 B at 32 pins x 8 Gbps = 1 ns).
    """

    # Row commands
    tRC: int = 45          # ACT to ACT in the same bank
    tRP: int = 16          # PRE to ACT in the same bank
    tRAS: int = 29         # ACT to PRE in the same bank
    tRCDRD: int = 16       # ACT to RD in the same bank
    tRCDWR: int = 16       # ACT to WR in the same bank
    tRRDS: int = 2         # ACT to ACT, different bank group
    tRRDL: int = 4         # ACT to ACT, same bank group
    tFAW: int = 12         # rolling window for four ACTs

    # Column commands
    tCL: int = 16          # RD to first data
    tCWL: int = 12         # WR to first data
    tCCDS: int = 1         # CAS to CAS, different bank group
    tCCDL: int = 2         # CAS to CAS, same bank group
    tCCDR: int = 2         # CAS to CAS, different stack ID (rank)
    tRTP: int = 6          # RD to PRE in the same bank
    tWR: int = 16          # end of write data to PRE in the same bank
    tRTW: int = 5          # RD to WR bus turnaround
    tWTRS: int = 4         # WR to RD, different bank group
    tWTRL: int = 8         # WR to RD, same bank group

    # Refresh
    tREFI: int = 3900      # average all-bank refresh interval
    tRFCab: int = 350      # all-bank refresh cycle time
    tREFIpb: int = 122     # per-bank refresh interval (tREFI / banks * stagger)
    tRFCpb: int = 280      # per-bank refresh cycle time
    tRREFD: int = 8        # REFpb to REFpb, different bank

    # Data bus
    burst_ns: int = 1      # bus occupancy of one 32 B column burst
    access_granularity_bytes: int = 32
    row_size_bytes: int = 1024

    def as_dict(self) -> Dict[str, int]:
        """Return the timing parameters as a plain dictionary."""
        return {
            name: getattr(self, name)
            for name in self.__dataclass_fields__  # type: ignore[attr-defined]
        }

    def scaled(self, factor: float) -> "TimingParameters":
        """Return a copy with every latency scaled by ``factor``.

        Bus/granularity fields are preserved.  Used for sensitivity studies.
        """
        scaled_fields = {}
        for name, value in self.as_dict().items():
            if name in ("burst_ns", "access_granularity_bytes", "row_size_bytes"):
                scaled_fields[name] = value
            else:
                scaled_fields[name] = max(1, int(round(value * factor)))
        return TimingParameters(**scaled_fields)

    def with_overrides(self, **overrides: int) -> "TimingParameters":
        """Return a copy with selected parameters replaced."""
        return replace(self, **overrides)

    @property
    def columns_per_row(self) -> int:
        """Number of column accesses needed to stream one full row."""
        return self.row_size_bytes // self.access_granularity_bytes

    @property
    def row_stream_ns(self) -> int:
        """Bus time to stream one full row from a single bank."""
        return self.columns_per_row * self.tCCDL

    def validate(self) -> None:
        """Raise ``ValueError`` if the parameter set is internally inconsistent."""
        if self.tRAS + self.tRP > self.tRC:
            raise ValueError(
                f"tRAS ({self.tRAS}) + tRP ({self.tRP}) must not exceed tRC ({self.tRC})"
            )
        if self.tCCDS > self.tCCDL:
            raise ValueError("tCCDS must be <= tCCDL")
        if self.row_size_bytes % self.access_granularity_bytes:
            raise ValueError("row size must be a multiple of the access granularity")
        if min(self.as_dict().values()) < 0:
            raise ValueError("timing parameters must be non-negative")


#: HBM4 timing parameters adopted by the paper (Table V).
HBM4_TIMING = TimingParameters()


def derive_hbm4_timing(**overrides: int) -> TimingParameters:
    """Return the paper's HBM4 timing with optional overrides applied."""
    timing = HBM4_TIMING.with_overrides(**overrides) if overrides else HBM4_TIMING
    timing.validate()
    return timing
