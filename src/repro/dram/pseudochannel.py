"""Pseudo channel: the unit that owns a data bus in HBM.

Two pseudo channels (PCs) share one channel's C/A pins but split its data pins
evenly (Section II-C).  The pseudo channel enforces every cross-bank timing
constraint of the conventional interface: CAS-to-CAS spacing (tCCDS/tCCDL),
ACT-to-ACT spacing (tRRDS/tRRDL, tFAW), write-to-read and read-to-write bus
turnaround, and data-bus occupancy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.dram.bank import Bank
from repro.dram.bankgroup import BankGroup
from repro.dram.commands import Command, CommandKind
from repro.dram.timing import TimingParameters

_NEG_INF = -(10**9)


@dataclass(frozen=True)
class CasStateSnapshot:
    """Read-only snapshot of a pseudo channel's command-timing state.

    Used by the burst-train planner (:mod:`repro.controller.scheduler`) to
    model column- and row-command readiness without mutating the live
    objects.  The fields mirror, one for one, the private state
    ``_cas_ready_time``/``_act_ready_time`` and the data-bus check in
    :meth:`PseudoChannel.can_issue` read.
    """

    last_cas_time: int
    last_cas_bank_group: Optional[int]
    last_cas_stack: Optional[int]
    last_cas_was_read: Optional[bool]
    last_write_data_end: int
    data_bus_busy_until: int
    last_act_time: int
    last_act_bank_group: Optional[int]
    act_window: Tuple[int, ...]


@dataclass
class PseudoChannelCounters:
    """Aggregate per-PC statistics."""

    commands: Dict[str, int] = field(default_factory=dict)
    data_bus_busy_ns: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def note_command(self, kind: CommandKind) -> None:
        self.commands[kind.value] = self.commands.get(kind.value, 0) + 1

    def count(self, kind: CommandKind) -> int:
        return self.commands.get(kind.value, 0)


def cas_ready_time(
    timing: TimingParameters,
    last_cas_time: int,
    last_cas_bank_group: Optional[int],
    last_cas_stack: Optional[int],
    last_cas_was_read: Optional[bool],
    last_write_data_end: int,
    bank_group: int,
    stack_id: int,
    is_read: bool,
) -> int:
    """Earliest instant the next CAS may issue given the previous CAS.

    Pure function over explicit state so :class:`PseudoChannel` (live
    state) and the burst-train planner (modeled state) share one copy of
    the CAS-spacing/turnaround rules and cannot drift.
    """
    if last_cas_time == _NEG_INF:
        return 0
    if last_cas_stack is not None and stack_id != last_cas_stack:
        gap = timing.tCCDR
    elif bank_group == last_cas_bank_group:
        gap = timing.tCCDL
    else:
        gap = timing.tCCDS
    ready = last_cas_time + gap
    if last_cas_was_read is True and not is_read:
        ready = max(ready, last_cas_time + timing.tRTW)
    if last_cas_was_read is False and is_read:
        wtr = timing.tWTRL if bank_group == last_cas_bank_group \
            else timing.tWTRS
        ready = max(ready, last_write_data_end + wtr)
    return ready


def act_ready_time(
    timing: TimingParameters,
    last_act_time: int,
    last_act_bank_group: Optional[int],
    act_window: Sequence[int],
    bank_group: int,
) -> int:
    """Earliest instant the next ACT may issue under tRRD/tFAW.

    Pure function shared by :class:`PseudoChannel` and the burst-train
    planner (see :func:`cas_ready_time`).
    """
    ready = 0
    if last_act_time != _NEG_INF:
        gap = timing.tRRDL if bank_group == last_act_bank_group \
            else timing.tRRDS
        ready = last_act_time + gap
    if len(act_window) >= 4:
        ready = max(ready, act_window[0] + timing.tFAW)
    return ready


class PseudoChannel:
    """One pseudo channel with its bank groups, banks, and data bus."""

    def __init__(
        self,
        timing: TimingParameters,
        pseudo_channel_id: int = 0,
        num_bank_groups: int = 4,
        banks_per_group: int = 4,
        num_stack_ids: int = 1,
    ) -> None:
        self.timing = timing
        self.pseudo_channel_id = pseudo_channel_id
        self.num_bank_groups = num_bank_groups
        self.banks_per_group = banks_per_group
        self.num_stack_ids = num_stack_ids
        # One independent set of bank groups per stack ID (rank).
        self.stacks: List[List[BankGroup]] = [
            [
                BankGroup(timing=timing, bank_group_id=bg, num_banks=banks_per_group)
                for bg in range(num_bank_groups)
            ]
            for _ in range(num_stack_ids)
        ]
        self.counters = PseudoChannelCounters()

        # Cross-bank timing state.
        self._last_act_time: int = _NEG_INF
        self._last_act_bank_group: Optional[int] = None
        self._act_window: Deque[int] = deque()  # for tFAW
        self._last_cas_time: int = _NEG_INF
        self._last_cas_bank_group: Optional[int] = None
        self._last_cas_stack: Optional[int] = None
        self._last_cas_was_read: Optional[bool] = None
        self._last_read_data_end: int = _NEG_INF
        self._last_write_data_end: int = _NEG_INF
        self._data_bus_busy_until: int = 0

    # ------------------------------------------------------------- structure

    def bank_groups(self, stack_id: int = 0) -> List[BankGroup]:
        return self.stacks[stack_id]

    def bank(self, bank_group: int, bank: int, stack_id: int = 0) -> Bank:
        return self.stacks[stack_id][bank_group].bank(bank)

    def all_banks(self) -> List[Bank]:
        return [
            bank
            for stack in self.stacks
            for group in stack
            for bank in group.banks
        ]

    @property
    def num_banks(self) -> int:
        return self.num_bank_groups * self.banks_per_group * self.num_stack_ids

    # -------------------------------------------------------------- timing

    def _cas_ready_time(self, bank_group: int, stack_id: int, is_read: bool) -> int:
        """Earliest time the next CAS may issue given the previous CAS."""
        return cas_ready_time(
            self.timing, self._last_cas_time, self._last_cas_bank_group,
            self._last_cas_stack, self._last_cas_was_read,
            self._last_write_data_end, bank_group, stack_id, is_read,
        )

    def _act_ready_time(self, bank_group: int) -> int:
        """Earliest time the next ACT may issue given ACT spacing rules."""
        return act_ready_time(
            self.timing, self._last_act_time, self._last_act_bank_group,
            self._act_window, bank_group,
        )

    def cas_state_snapshot(self) -> CasStateSnapshot:
        """Snapshot the command-timing state for read-only planning."""
        return CasStateSnapshot(
            last_cas_time=self._last_cas_time,
            last_cas_bank_group=self._last_cas_bank_group,
            last_cas_stack=self._last_cas_stack,
            last_cas_was_read=self._last_cas_was_read,
            last_write_data_end=self._last_write_data_end,
            data_bus_busy_until=self._data_bus_busy_until,
            last_act_time=self._last_act_time,
            last_act_bank_group=self._last_act_bank_group,
            act_window=tuple(self._act_window),
        )

    def command_ready_time(self, command: Command) -> int:
        """Earliest time ``command`` satisfies the PC-level constraints."""
        kind = command.kind
        if kind is CommandKind.ACT:
            return self._act_ready_time(command.bank_group)
        if kind in (CommandKind.RD, CommandKind.RDA, CommandKind.WR, CommandKind.WRA):
            return self._cas_ready_time(
                command.bank_group, command.stack_id, command.is_read
            )
        return 0

    # ------------------------------------------------------------ can_issue

    def can_issue(self, command: Command, now: int) -> bool:
        """Check all PC- and bank-level constraints for ``command`` at ``now``."""
        if now < self.command_ready_time(command):
            return False
        bank = self.bank(command.bank_group, command.bank, command.stack_id)
        if command.kind in (CommandKind.RD, CommandKind.RDA,
                            CommandKind.WR, CommandKind.WRA):
            group = self.stacks[command.stack_id][command.bank_group]
            data_start = now + (
                self.timing.tCL if command.is_read else self.timing.tCWL
            )
            if data_start < self._data_bus_busy_until:
                return False
            if not group.bus_free_at(now):
                return False
        if command.kind is CommandKind.REFAB:
            return all(
                b.can_issue(CommandKind.REFPB, now)
                for b in self.all_banks()
            )
        if command.kind is CommandKind.PREA:
            return True
        return bank.can_issue(command.kind, now, command.row)

    # ---------------------------------------------------------------- issue

    def issue(self, command: Command, now: int) -> None:
        """Issue ``command`` and update all timing state.

        Raises ``RuntimeError`` when a constraint would be violated so that
        scheduler bugs are surfaced instead of silently producing wrong
        bandwidth numbers.
        """
        if not self.can_issue(command, now):
            raise RuntimeError(f"cannot issue {command} at t={now}")
        t = self.timing
        kind = command.kind
        self.counters.note_command(kind)
        if kind is CommandKind.ACT:
            bank = self.bank(command.bank_group, command.bank, command.stack_id)
            bank.issue(kind, now, command.row)
            self._last_act_time = now
            self._last_act_bank_group = command.bank_group
            self._act_window.append(now)
            while len(self._act_window) > 4:
                self._act_window.popleft()
        elif kind in (CommandKind.RD, CommandKind.RDA, CommandKind.WR, CommandKind.WRA):
            bank = self.bank(command.bank_group, command.bank, command.stack_id)
            bank.issue(kind, now, command.row)
            group = self.stacks[command.stack_id][command.bank_group]
            group.note_cas(now)
            self._last_cas_time = now
            self._last_cas_bank_group = command.bank_group
            self._last_cas_stack = command.stack_id
            self._last_cas_was_read = command.is_read
            data_start = now + (t.tCL if command.is_read else t.tCWL)
            data_end = data_start + t.burst_ns
            self._data_bus_busy_until = max(self._data_bus_busy_until, data_end)
            self.counters.data_bus_busy_ns += t.burst_ns
            if command.is_read:
                self._last_read_data_end = data_end
                self.counters.bytes_read += t.access_granularity_bytes
            else:
                self._last_write_data_end = data_end
                self.counters.bytes_written += t.access_granularity_bytes
        elif kind in (CommandKind.PRE,):
            bank = self.bank(command.bank_group, command.bank, command.stack_id)
            bank.issue(kind, now, command.row)
        elif kind is CommandKind.PREA:
            for bank in self.all_banks():
                if bank.has_open_row and bank.can_issue(CommandKind.PRE, now):
                    bank.issue(CommandKind.PRE, now)
        elif kind is CommandKind.REFPB:
            bank = self.bank(command.bank_group, command.bank, command.stack_id)
            bank.issue(kind, now)
        elif kind is CommandKind.REFAB:
            for bank in self.all_banks():
                bank.issue(CommandKind.REFPB, now)
        elif kind is CommandKind.MRS:
            pass  # mode register writes have no timing effect in this model
        else:
            raise ValueError(f"pseudo channel cannot issue {kind}")

    def next_event_ns(self, now: int) -> Optional[int]:
        """Earliest future instant any PC-level or bank-level constraint can
        expire.

        The candidate set is a sound superset: every stored timestamp that
        feeds ``can_issue`` is offset by each gap that could apply to it
        (tCCDS/tCCDL/tCCDR, turnarounds, tRRDS/tRRDL, tFAW, data-bus and
        BK-BUS occupancy), so no issueability transition can occur strictly
        between ``now`` and the returned time.  Extra candidates merely cost
        a no-op evaluation.
        """
        t = self.timing
        candidates = []
        if self._last_cas_time != _NEG_INF:
            base = self._last_cas_time
            candidates += [base + t.tCCDS, base + t.tCCDL, base + t.tCCDR,
                           base + t.tRTW]
        if self._last_write_data_end != _NEG_INF:
            candidates += [self._last_write_data_end + t.tWTRS,
                           self._last_write_data_end + t.tWTRL]
        if self._last_act_time != _NEG_INF:
            candidates += [self._last_act_time + t.tRRDS,
                           self._last_act_time + t.tRRDL]
        if len(self._act_window) >= 4:
            candidates.append(self._act_window[0] + t.tFAW)
        if self._data_bus_busy_until > 0:
            candidates += [self._data_bus_busy_until - t.tCL,
                           self._data_bus_busy_until - t.tCWL,
                           self._data_bus_busy_until]
        best: Optional[int] = None
        for candidate in candidates:
            if candidate > now and (best is None or candidate < best):
                best = candidate
        for stack in self.stacks:
            for group in stack:
                candidate = group.next_event_ns(now)
                if candidate is not None and (best is None or candidate < best):
                    best = candidate
        return best

    # ----------------------------------------------------------------- stats

    def tick(self, now: int) -> None:
        """Advance transient bank states to ``now``."""
        for bank in self.all_banks():
            bank.tick(now)

    def data_bus_utilization(self, elapsed_ns: int) -> float:
        """Fraction of elapsed time the PC data bus transferred data."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.counters.data_bus_busy_ns / elapsed_ns)

    def command_counts(self) -> Dict[str, int]:
        return dict(self.counters.commands)

    def total_activates(self) -> int:
        return sum(
            group.total_counter("activates")
            for stack in self.stacks
            for group in stack
        )
