"""DRAM energy accounting.

The paper's Figure 14 breaks DRAM energy into activation (ACT), column access
+ data movement (CAS), and the RoMe command generator, and reports that RoMe
reduces total energy by 0.7-1.9 % mostly through fewer activations and fewer
commands crossing the interposer.  The model below mirrors that structure: it
converts command and byte counts into energy using per-operation constants
taken from the fine-grained DRAM literature (O'Connor et al., MICRO'17 and the
Folded-Banks HBM study the paper cites for its HBM4 energy model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants (picojoules).

    Attributes
    ----------
    act_pj_per_row:
        Energy of activating (and implicitly precharging) one 1 KB DRAM row.
    read_pj_per_byte / write_pj_per_byte:
        DRAM core + datapath energy to move one byte out of / into the array.
    io_pj_per_byte:
        Off-chip I/O energy per byte crossing the interposer (TSV + PHY).
    command_pj:
        Energy of delivering one command across the MC-to-DRAM interface.
    refresh_pj_per_bank:
        Energy of one per-bank refresh.
    command_generator_pj:
        Energy of the RoMe command generator expanding one row-level command
        (Section VI-C reports it contributes ~0.06 % of total energy).
    static_mw_per_channel:
        Background/standby power per channel in milliwatts.
    """

    act_pj_per_row: float = 909.0          # per 1 KB row activation
    read_pj_per_byte: float = 22.0         # core + datapath, ~2.75 pJ/bit
    write_pj_per_byte: float = 24.0
    io_pj_per_byte: float = 7.0            # TSV + interposer PHY, ~0.9 pJ/bit
    command_pj: float = 2.2
    refresh_pj_per_bank: float = 4200.0
    command_generator_pj: float = 1.1
    static_mw_per_channel: float = 18.0

    def act_energy(self, activates: int, row_bytes: int = 1024) -> float:
        """Activation energy in pJ; larger rows scale linearly."""
        return activates * self.act_pj_per_row * (row_bytes / 1024.0)


@dataclass
class EnergyCounters:
    """Event counts accumulated by a memory-system simulation or model."""

    activates: int = 0
    precharges: int = 0
    reads_bytes: int = 0
    writes_bytes: int = 0
    interface_commands: int = 0
    refreshes: int = 0
    row_command_expansions: int = 0   # RoMe command-generator invocations
    elapsed_ns: float = 0.0
    num_channels: int = 1
    row_bytes: int = 1024

    def merge(self, other: "EnergyCounters") -> "EnergyCounters":
        """Return the element-wise sum of two counter sets."""
        return EnergyCounters(
            activates=self.activates + other.activates,
            precharges=self.precharges + other.precharges,
            reads_bytes=self.reads_bytes + other.reads_bytes,
            writes_bytes=self.writes_bytes + other.writes_bytes,
            interface_commands=self.interface_commands + other.interface_commands,
            refreshes=self.refreshes + other.refreshes,
            row_command_expansions=(
                self.row_command_expansions + other.row_command_expansions
            ),
            elapsed_ns=max(self.elapsed_ns, other.elapsed_ns),
            num_channels=self.num_channels + other.num_channels,
            row_bytes=self.row_bytes,
        )


def energy_breakdown(counters: EnergyCounters,
                     model: EnergyModel | None = None) -> Dict[str, float]:
    """Convert counters into a Figure-14 style energy breakdown (picojoules).

    The breakdown keys mirror the paper's stacked bars: ``act``, ``cas``
    (column access + data movement + interposer I/O), ``command_generator``,
    plus ``refresh`` and ``static`` which the figure folds into CAS.
    """
    model = model or EnergyModel()
    act = model.act_energy(counters.activates, counters.row_bytes)
    data_bytes = counters.reads_bytes + counters.writes_bytes
    cas = (
        counters.reads_bytes * model.read_pj_per_byte
        + counters.writes_bytes * model.write_pj_per_byte
        + data_bytes * model.io_pj_per_byte
        + counters.interface_commands * model.command_pj
    )
    refresh = counters.refreshes * model.refresh_pj_per_bank
    command_generator = counters.row_command_expansions * model.command_generator_pj
    # 1 mW = 1e-3 J/s = 1e-12 J/ns = 1 pJ/ns, so mW * ns gives pJ directly.
    static = (
        model.static_mw_per_channel * counters.num_channels * counters.elapsed_ns
    )
    total = act + cas + refresh + command_generator + static
    return {
        "act": act,
        "cas": cas,
        "refresh": refresh,
        "command_generator": command_generator,
        "static": static,
        "total": total,
    }
