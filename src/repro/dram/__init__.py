"""Conventional HBM DRAM substrate.

This package models the DRAM side of a conventional HBM-based memory system
as described in Section II of the RoMe paper:

* :mod:`repro.dram.generations` -- published per-generation HBM specifications
  (HBM1 through HBM4) used for the trend analysis of Figure 2.
* :mod:`repro.dram.timing` -- DRAM timing parameter sets (Table II / Table V).
* :mod:`repro.dram.commands` -- DRAM command vocabulary.
* :mod:`repro.dram.bank` -- a single DRAM bank with its finite-state machine.
* :mod:`repro.dram.bankgroup` / :mod:`repro.dram.pseudochannel` /
  :mod:`repro.dram.channel` / :mod:`repro.dram.stack` -- the HBM hierarchy.
* :mod:`repro.dram.address` -- physical-address-to-DRAM-coordinate mapping.
* :mod:`repro.dram.refresh` -- all-bank and per-bank refresh bookkeeping.
* :mod:`repro.dram.energy` -- per-command/per-byte energy accounting.
"""

from repro.dram.commands import Command, CommandKind, command_bus
from repro.dram.timing import HBM4_TIMING, TimingParameters, derive_hbm4_timing
from repro.dram.generations import HBM_GENERATIONS, HBMGenerationSpec
from repro.dram.bank import Bank, BankState
from repro.dram.bankgroup import BankGroup
from repro.dram.pseudochannel import PseudoChannel
from repro.dram.channel import Channel, ChannelConfig
from repro.dram.stack import HBMStack, StackConfig
from repro.dram.address import AddressMapping, DramCoordinate
from repro.dram.refresh import RefreshEngine, RefreshMode
from repro.dram.energy import EnergyModel, EnergyCounters

__all__ = [
    "AddressMapping",
    "Bank",
    "BankGroup",
    "BankState",
    "Channel",
    "ChannelConfig",
    "Command",
    "CommandKind",
    "DramCoordinate",
    "EnergyCounters",
    "EnergyModel",
    "HBM4_TIMING",
    "HBMGenerationSpec",
    "HBMStack",
    "HBM_GENERATIONS",
    "PseudoChannel",
    "RefreshEngine",
    "RefreshMode",
    "StackConfig",
    "TimingParameters",
    "command_bus",
    "derive_hbm4_timing",
]
