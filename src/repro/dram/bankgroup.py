"""Bank group: the intermediate hierarchy level introduced for bandwidth.

A bank group shares one I/O control buffer and the bank data bus (BK-BUS)
running at the DRAM core frequency (1 / tCCDL), so column accesses within the
same bank group must be spaced ``tCCDL`` apart while accesses to *different*
bank groups may be spaced ``tCCDS`` apart (bank-group interleaving,
Section II-B of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.dram.bank import Bank
from repro.dram.timing import TimingParameters


@dataclass
class BankGroup:
    """A group of banks sharing the BK-BUS and I/O control buffer."""

    timing: TimingParameters
    bank_group_id: int
    num_banks: int = 4
    banks: List[Bank] = field(default_factory=list)

    # Time until which the shared BK-BUS (and I/O ctrl buffer) is occupied.
    _bus_busy_until: int = 0
    # Last column command issued to any bank in this group.
    last_cas_time: int = -(10**9)

    def __post_init__(self) -> None:
        if not self.banks:
            self.banks = [
                Bank(timing=self.timing, bank_group=self.bank_group_id, bank_id=i)
                for i in range(self.num_banks)
            ]
        if len(self.banks) != self.num_banks:
            raise ValueError("banks list does not match num_banks")

    def bank(self, index: int) -> Bank:
        return self.banks[index]

    def bus_free_at(self, now: int) -> bool:
        """True if the BK-BUS can accept a new transfer at ``now``."""
        return now >= self._bus_busy_until

    @property
    def bus_busy_until(self) -> int:
        """Current BK-BUS occupancy horizon (read-only planner snapshot)."""
        return self._bus_busy_until

    def reserve_bus(self, start: int) -> None:
        """Occupy the BK-BUS for one core-frequency beat starting at ``start``."""
        self._bus_busy_until = max(self._bus_busy_until, start + self.timing.tCCDL)

    def note_cas(self, now: int) -> None:
        self.last_cas_time = now
        self.reserve_bus(now)

    def next_event_ns(self, now: int) -> "int | None":
        """Earliest future instant the group's issueability can change."""
        best = self._bus_busy_until if self._bus_busy_until > now else None
        for bank in self.banks:
            candidate = bank.next_event_ns(now)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        return best

    @property
    def open_rows(self) -> int:
        """Number of banks currently holding an open row."""
        return sum(1 for bank in self.banks if bank.has_open_row)

    def total_counter(self, name: str) -> int:
        """Sum a named counter across all banks in the group."""
        return sum(getattr(bank.counters, name) for bank in self.banks)
