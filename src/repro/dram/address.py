"""Physical-address to DRAM-coordinate mapping.

The memory controller's address mapping unit translates a host physical
address into (channel, pseudo channel, stack ID, bank group, bank, row,
column).  The mapping order strongly affects channel/bank parallelism, so the
paper sweeps mappings for both the baseline and RoMe and picks the one that
maximizes bandwidth utilization (Section VI-A).  This module provides a
configurable field-order mapping plus the two defaults used in our
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

#: Recognized address fields, from least to most significant by default.
FIELDS = ("column", "pseudo_channel", "channel", "bank_group", "bank",
          "stack_id", "row")


@dataclass(frozen=True)
class DramCoordinate:
    """A fully decoded DRAM location."""

    channel: int
    pseudo_channel: int
    stack_id: int
    bank_group: int
    bank: int
    row: int
    column: int

    def as_tuple(self) -> Tuple[int, int, int, int, int, int, int]:
        return (
            self.channel,
            self.pseudo_channel,
            self.stack_id,
            self.bank_group,
            self.bank,
            self.row,
            self.column,
        )


@dataclass(frozen=True)
class AddressMapping:
    """Field-order address mapping at a fixed access granularity.

    ``field_order`` lists address fields from least significant to most
    significant.  The interleaving granularity is ``granularity_bytes``:
    consecutive ``granularity_bytes`` blocks walk through the first field,
    then the second, and so on.

    Example
    -------
    The default baseline mapping interleaves consecutive 32 B blocks across
    pseudo channels and channels first, which is what saturates bandwidth for
    streaming accesses.
    """

    granularity_bytes: int
    num_channels: int
    num_pseudo_channels: int = 2
    num_stack_ids: int = 4
    num_bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 1 << 14
    columns_per_row: int = 32
    #: Default order interleaves bank groups and pseudo channels below the
    #: column bits, which is the bandwidth-maximizing mapping for streaming
    #: accesses (the paper sweeps mappings and picks the best; this is it).
    field_order: Tuple[str, ...] = (
        "bank_group", "pseudo_channel", "column", "channel", "bank",
        "stack_id", "row",
    )

    def __post_init__(self) -> None:
        if set(self.field_order) != set(FIELDS):
            missing = set(FIELDS) - set(self.field_order)
            extra = set(self.field_order) - set(FIELDS)
            raise ValueError(
                f"field_order must be a permutation of {FIELDS}; "
                f"missing={sorted(missing)} extra={sorted(extra)}"
            )
        if self.granularity_bytes <= 0:
            raise ValueError("granularity_bytes must be positive")

    # ------------------------------------------------------------ geometry

    def field_size(self, field: str) -> int:
        sizes = {
            "column": self.columns_per_row,
            "pseudo_channel": self.num_pseudo_channels,
            "channel": self.num_channels,
            "bank_group": self.num_bank_groups,
            "bank": self.banks_per_group,
            "stack_id": self.num_stack_ids,
            "row": self.rows_per_bank,
        }
        return sizes[field]

    @property
    def bytes_per_row_system(self) -> int:
        """Bytes covered before the row field increments."""
        total = self.granularity_bytes
        for field in self.field_order:
            if field == "row":
                break
            total *= self.field_size(field)
        return total

    @property
    def capacity_bytes(self) -> int:
        total = self.granularity_bytes
        for field in self.field_order:
            total *= self.field_size(field)
        return total

    # ------------------------------------------------------------- mapping

    def decode(self, address: int) -> DramCoordinate:
        """Decode a byte address into a DRAM coordinate."""
        if address < 0:
            raise ValueError("address must be non-negative")
        block = address // self.granularity_bytes
        values: Dict[str, int] = {}
        for field in self.field_order:
            size = self.field_size(field)
            values[field] = block % size
            block //= size
        return DramCoordinate(
            channel=values["channel"],
            pseudo_channel=values["pseudo_channel"],
            stack_id=values["stack_id"],
            bank_group=values["bank_group"],
            bank=values["bank"],
            row=values["row"],
            column=values["column"],
        )

    def encode(self, coordinate: DramCoordinate) -> int:
        """Inverse of :meth:`decode` (returns the block-aligned byte address)."""
        values = {
            "channel": coordinate.channel,
            "pseudo_channel": coordinate.pseudo_channel,
            "stack_id": coordinate.stack_id,
            "bank_group": coordinate.bank_group,
            "bank": coordinate.bank,
            "row": coordinate.row,
            "column": coordinate.column,
        }
        block = 0
        multiplier = 1
        for field in self.field_order:
            size = self.field_size(field)
            value = values[field]
            if not 0 <= value < size:
                raise ValueError(f"{field}={value} out of range [0, {size})")
            block += value * multiplier
            multiplier *= size
        return block * self.granularity_bytes

    def decode_range(self, address: int, size_bytes: int) -> List[DramCoordinate]:
        """Decode every access-granularity block touched by ``[address, +size)``."""
        if size_bytes <= 0:
            return []
        first = address - (address % self.granularity_bytes)
        last = address + size_bytes - 1
        coordinates = []
        block_address = first
        while block_address <= last:
            coordinates.append(self.decode(block_address))
            block_address += self.granularity_bytes
        return coordinates

    def channel_of(self, address: int) -> int:
        return self.decode(address).channel


def baseline_hbm4_mapping(num_channels: int = 32) -> AddressMapping:
    """Default 32 B-granularity mapping for the HBM4 baseline.

    Bank groups and pseudo channels are interleaved below the column bits so
    streaming accesses exploit bank-group interleaving (Section II-B).
    """
    return AddressMapping(
        granularity_bytes=32,
        num_channels=num_channels,
        columns_per_row=32,
    )


def rome_mapping(num_channels: int = 36) -> AddressMapping:
    """Default 4 KB-granularity mapping for RoMe.

    RoMe has no pseudo channels, bank groups, or columns at the interface;
    the virtual-bank field plays the role of the bank, and each access covers
    one full 4 KB effective row.
    """
    return AddressMapping(
        granularity_bytes=4096,
        num_channels=num_channels,
        num_pseudo_channels=1,
        num_bank_groups=1,
        banks_per_group=16,     # 16 virtual banks per channel
        columns_per_row=1,
        field_order=(
            "column", "pseudo_channel", "channel", "bank", "bank_group",
            "stack_id", "row",
        ),
    )
