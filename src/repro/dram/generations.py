"""Published HBM generation specifications.

The RoMe paper motivates the row-granularity interface with two trends across
HBM generations (Figure 2):

* the external data rate keeps growing while the DRAM core frequency has
  stayed nearly flat, which forced the introduction of bank groups and pseudo
  channels; and
* the command/address (C/A) pin overhead per data (DQ) pin keeps growing as
  channels become narrower and more numerous.

This module records the per-generation parameters needed to regenerate both
trends.  The values follow the JEDEC specifications and the ISSCC device
papers cited by RoMe; where a generation spans several speed grades we use the
flagship configuration referenced in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class HBMGenerationSpec:
    """Specification of one HBM generation.

    Attributes
    ----------
    name:
        Generation label (``"HBM1"`` ... ``"HBM4"``).
    data_rate_gbps:
        Per-pin data rate in Gbit/s.
    core_frequency_mhz:
        DRAM core (bank) frequency in MHz.  The core frequency is the rate at
        which a single bank can produce ``access_granularity_bank`` bits.
    channel_width_bits:
        Width of one addressable channel as seen by the memory controller.
    channels_per_cube:
        Number of independent channels per HBM cube.
    pseudo_channels_per_channel:
        Pseudo channels sharing the channel's C/A pins.
    row_ca_pins_per_channel:
        Row command/address pins per channel.
    col_ca_pins_per_channel:
        Column command/address pins per channel (0 before the row/column C/A
        split was introduced).
    bank_groups_per_pseudo_channel:
        Bank groups exposed to the controller (1 when bank groups do not
        exist for the generation).
    banks_per_bank_group:
        Banks per bank group.
    row_size_bytes:
        Row (page) size per bank as seen from one pseudo channel.
    access_granularity_bytes:
        Minimum data transfer per column command (``AG_MC``).
    """

    name: str
    data_rate_gbps: float
    core_frequency_mhz: float
    channel_width_bits: int
    channels_per_cube: int
    pseudo_channels_per_channel: int
    row_ca_pins_per_channel: int
    col_ca_pins_per_channel: int
    bank_groups_per_pseudo_channel: int
    banks_per_bank_group: int
    row_size_bytes: int
    access_granularity_bytes: int

    @property
    def dq_pins_per_cube(self) -> int:
        """Total data pins exposed by one cube."""
        return self.channel_width_bits * self.channels_per_cube

    @property
    def ca_pins_per_channel(self) -> int:
        """Row plus column C/A pins of a single channel."""
        return self.row_ca_pins_per_channel + self.col_ca_pins_per_channel

    @property
    def ca_pins_per_cube(self) -> int:
        """Total C/A pins across the cube (all channels)."""
        return self.ca_pins_per_channel * self.channels_per_cube

    @property
    def ca_per_dq_ratio(self) -> float:
        """C/A-to-DQ pin ratio, the overhead metric plotted in Figure 2(b)."""
        return self.ca_pins_per_cube / self.dq_pins_per_cube

    @property
    def bandwidth_gbps_per_cube(self) -> float:
        """Aggregate cube bandwidth in GB/s."""
        return self.data_rate_gbps * self.dq_pins_per_cube / 8.0

    @property
    def bandwidth_per_channel_gbps(self) -> float:
        """Per-channel bandwidth in GB/s."""
        return self.data_rate_gbps * self.channel_width_bits / 8.0

    @property
    def ca_bandwidth_gbps(self) -> float:
        """Aggregate C/A command bandwidth in GB/s across the cube.

        C/A pins toggle at the command clock which tracks half the data rate
        in recent generations; the paper's Figure 2(b) uses this as a proxy
        for the growing command-delivery cost.
        """
        command_rate_gbps = self.data_rate_gbps / 4.0
        return command_rate_gbps * self.ca_pins_per_cube / 8.0

    @property
    def banks_per_pseudo_channel(self) -> int:
        return self.bank_groups_per_pseudo_channel * self.banks_per_bank_group


#: Flagship specification per generation, ordered oldest to newest.
HBM_GENERATIONS: Dict[str, HBMGenerationSpec] = {
    "HBM1": HBMGenerationSpec(
        name="HBM1",
        data_rate_gbps=1.0,
        core_frequency_mhz=250.0,
        channel_width_bits=128,
        channels_per_cube=8,
        pseudo_channels_per_channel=1,
        row_ca_pins_per_channel=6,
        col_ca_pins_per_channel=8,
        bank_groups_per_pseudo_channel=1,
        banks_per_bank_group=16,
        row_size_bytes=2048,
        access_granularity_bytes=32,
    ),
    "HBM2": HBMGenerationSpec(
        name="HBM2",
        data_rate_gbps=2.4,
        core_frequency_mhz=300.0,
        channel_width_bits=128,
        channels_per_cube=8,
        pseudo_channels_per_channel=2,
        row_ca_pins_per_channel=6,
        col_ca_pins_per_channel=8,
        bank_groups_per_pseudo_channel=4,
        banks_per_bank_group=4,
        row_size_bytes=1024,
        access_granularity_bytes=64,
    ),
    "HBM2E": HBMGenerationSpec(
        name="HBM2E",
        data_rate_gbps=3.6,
        core_frequency_mhz=400.0,
        channel_width_bits=128,
        channels_per_cube=8,
        pseudo_channels_per_channel=2,
        row_ca_pins_per_channel=6,
        col_ca_pins_per_channel=8,
        bank_groups_per_pseudo_channel=4,
        banks_per_bank_group=4,
        row_size_bytes=1024,
        access_granularity_bytes=64,
    ),
    "HBM3": HBMGenerationSpec(
        name="HBM3",
        data_rate_gbps=6.4,
        core_frequency_mhz=450.0,
        channel_width_bits=64,
        channels_per_cube=16,
        pseudo_channels_per_channel=2,
        row_ca_pins_per_channel=10,
        col_ca_pins_per_channel=8,
        bank_groups_per_pseudo_channel=4,
        banks_per_bank_group=4,
        row_size_bytes=1024,
        access_granularity_bytes=32,
    ),
    "HBM3E": HBMGenerationSpec(
        name="HBM3E",
        data_rate_gbps=9.6,
        core_frequency_mhz=500.0,
        channel_width_bits=64,
        channels_per_cube=16,
        pseudo_channels_per_channel=2,
        row_ca_pins_per_channel=10,
        col_ca_pins_per_channel=8,
        bank_groups_per_pseudo_channel=4,
        banks_per_bank_group=4,
        row_size_bytes=1024,
        access_granularity_bytes=32,
    ),
    "HBM4": HBMGenerationSpec(
        name="HBM4",
        data_rate_gbps=8.0,
        core_frequency_mhz=500.0,
        channel_width_bits=64,
        channels_per_cube=32,
        pseudo_channels_per_channel=2,
        row_ca_pins_per_channel=10,
        col_ca_pins_per_channel=8,
        bank_groups_per_pseudo_channel=4,
        banks_per_bank_group=4,
        row_size_bytes=1024,
        access_granularity_bytes=32,
    ),
}

#: Generation names in chronological order, used by the Figure 2 benchmark.
GENERATION_ORDER: Tuple[str, ...] = (
    "HBM1",
    "HBM2",
    "HBM2E",
    "HBM3",
    "HBM3E",
    "HBM4",
)


def generation(name: str) -> HBMGenerationSpec:
    """Return the spec for ``name``, raising ``KeyError`` with guidance."""
    try:
        return HBM_GENERATIONS[name.upper()]
    except KeyError as exc:
        known = ", ".join(GENERATION_ORDER)
        raise KeyError(f"Unknown HBM generation {name!r}; known: {known}") from exc


def trend_table() -> Dict[str, Dict[str, float]]:
    """Build the Figure 2 trend table.

    Returns a mapping from generation name to the quantities plotted in
    Figure 2: data rate, core frequency, channel width, C/A-per-DQ ratio, and
    C/A bandwidth.
    """
    table: Dict[str, Dict[str, float]] = {}
    for name in GENERATION_ORDER:
        spec = HBM_GENERATIONS[name]
        table[name] = {
            "data_rate_gbps": spec.data_rate_gbps,
            "core_frequency_mhz": spec.core_frequency_mhz,
            "channel_width_bits": float(spec.channel_width_bits),
            "channels_per_cube": float(spec.channels_per_cube),
            "ca_per_dq_ratio": spec.ca_per_dq_ratio,
            "ca_bandwidth_gbps": spec.ca_bandwidth_gbps,
            "cube_bandwidth_gbps": spec.bandwidth_gbps_per_cube,
        }
    return table
