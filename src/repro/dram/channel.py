"""HBM channel: two pseudo channels sharing one set of C/A pins.

The channel models the shared command/address bus: in a given nanosecond one
row command and one column command can be delivered (HBM defines separate row
and column C/A pins, Section II-B), and the two pseudo channels contend for
those pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dram.commands import Command, CommandKind, command_bus
from repro.dram.pseudochannel import PseudoChannel
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class ChannelConfig:
    """Static organization of a single HBM channel."""

    timing: TimingParameters
    num_pseudo_channels: int = 2
    num_bank_groups: int = 4
    banks_per_group: int = 4
    num_stack_ids: int = 4
    channel_width_bits: int = 64

    @property
    def banks_per_pseudo_channel(self) -> int:
        return self.num_bank_groups * self.banks_per_group * self.num_stack_ids

    @property
    def banks_per_channel(self) -> int:
        return self.banks_per_pseudo_channel * self.num_pseudo_channels

    @property
    def peak_bandwidth_bytes_per_ns(self) -> float:
        """Peak data bandwidth of the whole channel in bytes per nanosecond."""
        per_pc = self.timing.access_granularity_bytes / self.timing.tCCDS
        return per_pc * self.num_pseudo_channels


class Channel:
    """A conventional HBM channel (two pseudo channels, shared C/A pins)."""

    def __init__(self, config: ChannelConfig, channel_id: int = 0) -> None:
        self.config = config
        self.channel_id = channel_id
        self.timing = config.timing
        self.pseudo_channels: List[PseudoChannel] = [
            PseudoChannel(
                timing=config.timing,
                pseudo_channel_id=pc,
                num_bank_groups=config.num_bank_groups,
                banks_per_group=config.banks_per_group,
                num_stack_ids=config.num_stack_ids,
            )
            for pc in range(config.num_pseudo_channels)
        ]
        # C/A bus occupancy: the last ns in which a row / column command was
        # sent to each pseudo channel.  The two PCs share the physical pins
        # but the command rate is high enough to serve one row and one column
        # command per PC per nanosecond, which is what this tracks.
        self._last_row_ca_time: Dict[int, int] = {
            pc: -1 for pc in range(config.num_pseudo_channels)
        }
        self._last_col_ca_time: Dict[int, int] = {
            pc: -1 for pc in range(config.num_pseudo_channels)
        }
        # Set once the channel has ever issued an auto-precharging CAS
        # (RDA/WRA); lets the planner's auto-precharge guard answer in O(1)
        # on the common path instead of scanning every bank.
        self._seen_auto_precharge = False

    # ------------------------------------------------------------- plumbing

    def pseudo_channel(self, index: int) -> PseudoChannel:
        return self.pseudo_channels[index]

    def tick(self, now: int) -> None:
        for pc in self.pseudo_channels:
            pc.tick(now)

    # ----------------------------------------------------------- C/A sharing

    def _ca_bus_free(self, command: Command, now: int) -> bool:
        bus = command_bus(command.kind)
        pc = command.pseudo_channel
        if bus == "column":
            return now > self._last_col_ca_time[pc]
        return now > self._last_row_ca_time[pc]

    def _note_ca_use(self, command: Command, now: int) -> None:
        bus = command_bus(command.kind)
        pc = command.pseudo_channel
        if bus == "column":
            self._last_col_ca_time[pc] = now
        else:
            self._last_row_ca_time[pc] = now

    # -------------------------------------------------------------- issuing

    def can_issue(self, command: Command, now: int) -> bool:
        """Check C/A availability plus all pseudo-channel constraints."""
        if not self._ca_bus_free(command, now):
            return False
        pc = self.pseudo_channels[command.pseudo_channel]
        return pc.can_issue(command, now)

    def issue(self, command: Command, now: int) -> None:
        if not self._ca_bus_free(command, now):
            raise RuntimeError(f"C/A bus busy for {command} at t={now}")
        pc = self.pseudo_channels[command.pseudo_channel]
        pc.issue(command, now)
        self._note_ca_use(command, now)
        if command.kind in (CommandKind.RDA, CommandKind.WRA):
            self._seen_auto_precharge = True

    def last_column_ca_time(self, pseudo_channel: int) -> int:
        """Last ns the column C/A pins served ``pseudo_channel`` (snapshot)."""
        return self._last_col_ca_time[pseudo_channel]

    def last_row_ca_time(self, pseudo_channel: int) -> int:
        """Last ns the row C/A pins served ``pseudo_channel`` (snapshot)."""
        return self._last_row_ca_time[pseudo_channel]

    def any_auto_precharge_pending(self) -> bool:
        """True if any bank has an unresolved RDA/WRA auto-precharge.

        O(1) while the channel has never issued an auto-precharging CAS
        (the FR-FCFS controller never does); the per-bank scan only runs
        once one has been seen.
        """
        if not self._seen_auto_precharge:
            return False
        return any(
            bank.auto_precharge_pending
            for pc in self.pseudo_channels
            for bank in pc.all_banks()
        )

    def next_event_ns(self, now: int) -> Optional[int]:
        """Earliest future instant any channel constraint can expire."""
        best: Optional[int] = None
        for pc in self.pseudo_channels:
            candidate = pc.next_event_ns(now)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        for last in self._last_row_ca_time.values():
            if last + 1 > now and (best is None or last + 1 < best):
                best = last + 1
        for last in self._last_col_ca_time.values():
            if last + 1 > now and (best is None or last + 1 < best):
                best = last + 1
        return best

    # ----------------------------------------------------------------- stats

    def data_bus_utilization(self, elapsed_ns: int) -> float:
        if not self.pseudo_channels:
            return 0.0
        return sum(
            pc.data_bus_utilization(elapsed_ns) for pc in self.pseudo_channels
        ) / len(self.pseudo_channels)

    def command_counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for pc in self.pseudo_channels:
            for name, count in pc.command_counts().items():
                totals[name] = totals.get(name, 0) + count
        return totals

    def bytes_transferred(self) -> int:
        return sum(
            pc.counters.bytes_read + pc.counters.bytes_written
            for pc in self.pseudo_channels
        )

    def total_activates(self) -> int:
        return sum(pc.total_activates() for pc in self.pseudo_channels)
