"""Refresh bookkeeping for conventional HBM.

Both the baseline and RoMe employ per-bank refresh (REFpb) to improve
bandwidth availability (Section VI-A); all-bank refresh (REFab) is also
modelled for completeness.  The refresh engine tracks, per bank, when the next
refresh is due and exposes the set of overdue refreshes to the memory
controller's refresh scheduler, which may postpone them up to a bounded debt.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dram.timing import TimingParameters


class RefreshMode(enum.Enum):
    """Supported refresh strategies."""

    ALL_BANK = "all_bank"
    PER_BANK = "per_bank"


@dataclass
class RefreshTarget:
    """A refresh obligation for one bank (or a whole channel for REFab)."""

    due_time: int
    stack_id: int = 0
    bank_group: int = 0
    bank: int = 0
    all_bank: bool = False

    @property
    def track(self) -> str:
        """Bank-group sub-track label for trace events about this target
        (the obs layer renders one track per channel/bank-group)."""
        if self.all_bank:
            return "refab"
        return f"sid{self.stack_id}.bg{self.bank_group}"


@dataclass
class RefreshEngine:
    """Tracks refresh deadlines for every bank behind one channel or PC.

    Parameters
    ----------
    timing:
        Timing parameters providing ``tREFI``/``tREFIpb``.
    num_stack_ids / num_bank_groups / banks_per_group:
        Bank topology to refresh.
    mode:
        All-bank or per-bank refresh.
    max_postponed:
        How many refresh intervals a bank may be postponed before the
        controller must stall for it (JEDEC allows postponing a bounded
        number of refreshes).
    interval_multiplier:
        RoMe issues one refresh command per VBA every ``2 x tREFIpb`` and
        lets the command generator emit the two per-bank refreshes
        back-to-back (Section V-B); setting ``interval_multiplier=2`` models
        that behaviour.
    """

    timing: TimingParameters
    num_stack_ids: int = 1
    num_bank_groups: int = 4
    banks_per_group: int = 4
    mode: RefreshMode = RefreshMode.PER_BANK
    max_postponed: int = 4
    interval_multiplier: int = 1
    _next_due: Dict[Tuple[int, int, int], int] = field(default_factory=dict)
    _next_all_bank: int = 0
    issued: int = 0

    def __post_init__(self) -> None:
        if self.interval_multiplier < 1:
            raise ValueError("interval_multiplier must be >= 1")
        offset = 0
        stagger = max(1, self.command_interval())
        for key in self._bank_keys():
            self._next_due[key] = offset
            offset += stagger
        self._next_all_bank = self.timing.tREFI

    # ------------------------------------------------------------- topology

    def _bank_keys(self) -> Iterator[Tuple[int, int, int]]:
        for sid in range(self.num_stack_ids):
            for bg in range(self.num_bank_groups):
                for bank in range(self.banks_per_group):
                    yield (sid, bg, bank)

    @property
    def num_banks(self) -> int:
        return self.num_stack_ids * self.num_bank_groups * self.banks_per_group

    def command_interval(self) -> int:
        """Average spacing between refresh *commands* on this engine.

        ``tREFIpb`` is the rate at which per-bank refresh commands must be
        issued while rotating over the banks (Section II-D); with the RoMe
        pairing optimization one command covers a whole VBA, so the command
        rate halves (``interval_multiplier = 2``).
        """
        if self.mode is RefreshMode.ALL_BANK:
            return self.timing.tREFI
        return self.timing.tREFIpb * self.interval_multiplier

    def interval(self) -> int:
        """Refresh period of an individual target (bank) in nanoseconds.

        Rotating one REFpb every ``tREFIpb`` over ``num_banks`` banks brings
        each bank back around every ``tREFIpb x num_banks``; that per-bank
        period is what the deadline tracking uses.
        """
        if self.mode is RefreshMode.ALL_BANK:
            return self.timing.tREFI
        return self.command_interval() * max(1, self.num_banks)

    def cycle_time(self) -> int:
        """Duration of one refresh operation."""
        if self.mode is RefreshMode.ALL_BANK:
            return self.timing.tRFCab
        return self.timing.tRFCpb

    # -------------------------------------------------------------- queries

    def due_targets(self, now: int) -> List[RefreshTarget]:
        """All refresh obligations whose deadline has passed at ``now``."""
        if self.mode is RefreshMode.ALL_BANK:
            if now >= self._next_all_bank:
                return [RefreshTarget(due_time=self._next_all_bank, all_bank=True)]
            return []
        due = [
            RefreshTarget(due_time=t, stack_id=sid, bank_group=bg, bank=bank)
            for (sid, bg, bank), t in self._next_due.items()
            if now >= t
        ]
        due.sort(key=lambda target: target.due_time)
        return due

    def most_urgent(self, now: int) -> Optional[RefreshTarget]:
        due = self.due_targets(now)
        return due[0] if due else None

    def slack_ns(self) -> int:
        """Postponement headroom: how long past its deadline a target may
        slip before it becomes *critical* (the criticality threshold).

        Shared by :meth:`is_critical`, :meth:`next_event_ns`, and the
        burst-train planner's refresh model so the three cannot drift.
        """
        return self.max_postponed * self.interval()

    def due_snapshot(self) -> List[Tuple[Tuple[int, int, int], int]]:
        """Read-only ``((stack_id, bank_group, bank), due_time)`` pairs.

        Seeds the burst-train planner's modeled copy of this engine.  Due
        times are pairwise distinct by construction (staggered offsets,
        bumps in whole intervals), so ordering by due time is total.
        """
        return list(self._next_due.items())

    def is_critical(self, target: RefreshTarget, now: int) -> bool:
        """True when the refresh can no longer be postponed."""
        return now - target.due_time >= self.slack_ns()

    def next_event_ns(self, now: int) -> Optional[int]:
        """Earliest future time a refresh decision can change.

        For each target not yet due this is its deadline; for one already
        due but still postponable it is the criticality transition (the
        instant the scheduler must force it through).  Already-critical
        targets generate no future event of their own.
        """
        slack = self.slack_ns()
        if self.mode is RefreshMode.ALL_BANK:
            deadlines = (self._next_all_bank,)
        else:
            deadlines = self._next_due.values()
        best: Optional[int] = None
        for due in deadlines:
            candidate = due if due > now else due + slack
            if candidate > now and (best is None or candidate < best):
                best = candidate
        return best

    # ------------------------------------------------------------ completion

    def note_refresh_issued(self, target: RefreshTarget, now: int) -> None:
        """Record that the refresh for ``target`` was issued at ``now``."""
        self.issued += 1
        if self.mode is RefreshMode.ALL_BANK or target.all_bank:
            self._next_all_bank += self.timing.tREFI
            return
        key = (target.stack_id, target.bank_group, target.bank)
        self._next_due[key] += self.interval()

    def refresh_debt(self, now: int) -> int:
        """Number of refresh obligations currently overdue."""
        return len(self.due_targets(now))
