"""DRAM command vocabulary.

Conventional HBM exposes column-granularity commands (RD/WR) plus the row
management commands (ACT/PRE) and maintenance commands (REF).  RoMe collapses
the data-access portion of this vocabulary into two row-granularity commands,
``RD_row`` and ``WR_row`` (Section IV-A); those are also defined here so both
memory controllers share one command type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class CommandKind(enum.Enum):
    """All commands understood by the simulated DRAM devices."""

    ACT = "ACT"
    PRE = "PRE"
    PREA = "PREA"          # precharge-all (bank-group or channel scope)
    RD = "RD"
    RDA = "RDA"            # read with auto-precharge
    WR = "WR"
    WRA = "WRA"            # write with auto-precharge
    REFAB = "REFab"        # all-bank refresh
    REFPB = "REFpb"        # per-bank refresh
    MRS = "MRS"            # mode register set
    RD_ROW = "RD_row"      # RoMe row-granularity read
    WR_ROW = "WR_row"      # RoMe row-granularity write
    REF_ROW = "REF_row"    # RoMe-level refresh (expanded to paired REFpb)


#: Commands that transfer data on the DQ bus.
DATA_COMMANDS = frozenset(
    {CommandKind.RD, CommandKind.RDA, CommandKind.WR, CommandKind.WRA,
     CommandKind.RD_ROW, CommandKind.WR_ROW}
)

#: Commands that open a row.
ROW_OPEN_COMMANDS = frozenset({CommandKind.ACT})

#: Commands that close a row.
ROW_CLOSE_COMMANDS = frozenset({CommandKind.PRE, CommandKind.PREA,
                                CommandKind.RDA, CommandKind.WRA})

#: Column (CAS) commands in the conventional interface.
COLUMN_COMMANDS = frozenset(
    {CommandKind.RD, CommandKind.RDA, CommandKind.WR, CommandKind.WRA}
)

#: Row-bus commands in the conventional interface.
ROW_COMMANDS = frozenset(
    {CommandKind.ACT, CommandKind.PRE, CommandKind.PREA,
     CommandKind.REFAB, CommandKind.REFPB, CommandKind.MRS}
)

#: RoMe row-granularity commands.
ROME_COMMANDS = frozenset(
    {CommandKind.RD_ROW, CommandKind.WR_ROW, CommandKind.REF_ROW}
)

#: Commands that read data (used for bus-turnaround accounting).
READ_COMMANDS = frozenset({CommandKind.RD, CommandKind.RDA, CommandKind.RD_ROW})

#: Commands that write data.
WRITE_COMMANDS = frozenset({CommandKind.WR, CommandKind.WRA, CommandKind.WR_ROW})


def command_bus(kind: CommandKind) -> str:
    """Return which C/A bus carries ``kind``.

    HBM defines separate row and column C/A pins (Section II-B).  RoMe routes
    everything over the single reduced C/A bus (Section IV-D).
    """
    if kind in COLUMN_COMMANDS:
        return "column"
    if kind in ROME_COMMANDS:
        return "rome"
    return "row"


@dataclass(frozen=True)
class Command:
    """A single DRAM command addressed to a specific resource.

    The coordinate fields that do not apply to a command are left at their
    defaults (e.g. ``column`` is ``None`` for an ACT).
    """

    kind: CommandKind
    channel: int = 0
    pseudo_channel: int = 0
    stack_id: int = 0
    bank_group: int = 0
    bank: int = 0
    row: int = 0
    column: Optional[int] = None
    #: Identifier of the host request this command serves (None for refresh).
    request_id: Optional[int] = None
    #: Optional metadata for tracing/debugging.
    tag: str = field(default="", compare=False)

    @property
    def is_read(self) -> bool:
        return self.kind in READ_COMMANDS

    @property
    def is_write(self) -> bool:
        return self.kind in WRITE_COMMANDS

    @property
    def transfers_data(self) -> bool:
        return self.kind in DATA_COMMANDS

    @property
    def bus(self) -> str:
        return command_bus(self.kind)

    def with_offset_bank(self, bank_group: int, bank: int) -> "Command":
        """Return a copy retargeted at another (bank group, bank) pair."""
        return Command(
            kind=self.kind,
            channel=self.channel,
            pseudo_channel=self.pseudo_channel,
            stack_id=self.stack_id,
            bank_group=bank_group,
            bank=bank,
            row=self.row,
            column=self.column,
            request_id=self.request_id,
            tag=self.tag,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        loc = (
            f"ch{self.channel}.pc{self.pseudo_channel}.sid{self.stack_id}"
            f".bg{self.bank_group}.ba{self.bank}.r{self.row}"
        )
        if self.column is not None:
            loc += f".c{self.column}"
        return f"{self.kind.value}@{loc}"
