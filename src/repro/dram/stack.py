"""HBM cube (stack) organization.

An HBM cube stacks DRAM dies on a logic die; each cube exposes many channels
(32 in HBM4) and groups every four DRAM dies into a stack ID (SID).  The cube
object is mostly an organizational container used for capacity accounting,
pin-budget analysis, and for building multi-channel memory systems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.channel import Channel, ChannelConfig
from repro.dram.timing import TimingParameters


@dataclass(frozen=True)
class StackConfig:
    """Static organization of one HBM cube."""

    channel: ChannelConfig
    num_channels: int = 32
    dies: int = 16                      # 16-Hi stack (paper's configuration)
    capacity_gib: int = 32
    data_rate_gbps: float = 8.0
    dq_pins_per_channel: int = 64
    row_ca_pins_per_channel: int = 10
    col_ca_pins_per_channel: int = 8
    misc_pins_per_channel: int = 38     # clocks, strobes, ECC, power mgmt, etc.

    @property
    def pins_per_channel(self) -> int:
        """Total per-channel pin count (120 for HBM4 per the paper)."""
        return (
            self.dq_pins_per_channel
            + self.row_ca_pins_per_channel
            + self.col_ca_pins_per_channel
            + self.misc_pins_per_channel
        )

    @property
    def total_pins(self) -> int:
        return self.pins_per_channel * self.num_channels

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak cube bandwidth in GB/s."""
        return (
            self.data_rate_gbps
            * self.dq_pins_per_channel
            * self.num_channels
            / 8.0
        )

    @property
    def channels_per_die(self) -> float:
        return self.num_channels / max(1, self.dies // 2)


def hbm4_stack_config(timing: TimingParameters | None = None) -> StackConfig:
    """The paper's HBM4 cube: 32 channels, 8 Gbps, 32 GB, 16-Hi."""
    channel = ChannelConfig(timing=timing or TimingParameters())
    return StackConfig(channel=channel)


class HBMStack:
    """A full HBM cube instantiated with live channel simulators."""

    def __init__(self, config: StackConfig, stack_index: int = 0,
                 instantiate_channels: bool = True) -> None:
        self.config = config
        self.stack_index = stack_index
        self.channels: List[Channel] = []
        if instantiate_channels:
            self.channels = [
                Channel(config.channel, channel_id=i)
                for i in range(config.num_channels)
            ]

    @property
    def num_channels(self) -> int:
        return self.config.num_channels

    @property
    def capacity_bytes(self) -> int:
        return self.config.capacity_gib * (1 << 30)

    def channel(self, index: int) -> Channel:
        return self.channels[index]

    def total_bytes_transferred(self) -> int:
        return sum(channel.bytes_transferred() for channel in self.channels)
