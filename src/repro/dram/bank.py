"""A single DRAM bank and its finite-state machine.

The conventional memory controller must track seven bank states (Section II-D):
Idle, Activating, Active, Precharging, Reading, Writing, and Refreshing.  The
bank object below owns that state machine plus the per-bank timing windows
(earliest time each command kind may next be issued to this bank).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dram.commands import CommandKind
from repro.dram.timing import TimingParameters


class BankState(enum.Enum):
    """The seven conventional bank states."""

    IDLE = "idle"
    ACTIVATING = "activating"
    ACTIVE = "active"
    READING = "reading"
    WRITING = "writing"
    PRECHARGING = "precharging"
    REFRESHING = "refreshing"


#: States in which the row buffer holds (or is in the process of opening) a
#: row; FR-FCFS treats all of them as row hits, with the per-command timing
#: windows still gating when a column command may actually issue.
_OPEN_ROW_STATES = frozenset(
    {BankState.ACTIVATING, BankState.ACTIVE, BankState.READING, BankState.WRITING}
)


def column_precharge_ready(timing: TimingParameters, is_read: bool,
                           now: int) -> int:
    """Earliest precharge instant implied by a column command at ``now``
    (read-to-precharge vs write-recovery).

    Pure helper shared by :meth:`Bank.issue` and the burst-train planner so
    the recovery rule cannot drift between the live and modeled paths.
    """
    if is_read:
        return now + timing.tRTP
    return now + timing.tCWL + timing.burst_ns + timing.tWR


@dataclass
class BankCounters:
    """Per-bank event counters used for statistics and energy accounting."""

    activates: int = 0
    precharges: int = 0
    reads: int = 0
    writes: int = 0
    refreshes: int = 0
    row_hits: int = 0
    row_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "activates": self.activates,
            "precharges": self.precharges,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
        }


@dataclass
class Bank:
    """One DRAM bank with timing windows and the seven-state FSM."""

    timing: TimingParameters
    bank_group: int = 0
    bank_id: int = 0
    state: BankState = BankState.IDLE
    open_row: Optional[int] = None
    counters: BankCounters = field(default_factory=BankCounters)

    # Earliest times at which each command class may be issued to this bank.
    next_act: int = 0
    next_read: int = 0
    next_write: int = 0
    next_pre: int = 0
    next_refresh: int = 0

    # Time at which the current transient state (activating / reading /
    # writing / precharging / refreshing) resolves.
    _state_until: int = 0
    # Pending auto-precharge completion time (RDA/WRA), if any.
    _auto_precharge_at: Optional[int] = None

    # ------------------------------------------------------------------ state

    def tick(self, now: int) -> None:
        """Resolve transient states whose duration has elapsed at ``now``."""
        if self._auto_precharge_at is not None and now >= self._auto_precharge_at:
            # The in-flight auto-precharge has started; model it as an
            # explicit precharge that began at its scheduled time.
            start = self._auto_precharge_at
            self._auto_precharge_at = None
            self.open_row = None
            self.state = BankState.PRECHARGING
            self._state_until = start + self.timing.tRP
            self.next_act = max(self.next_act, start + self.timing.tRP)
        if now < self._state_until:
            return
        if self.state is BankState.ACTIVATING:
            self.state = BankState.ACTIVE
        elif self.state in (BankState.READING, BankState.WRITING):
            self.state = BankState.ACTIVE
        elif self.state is BankState.PRECHARGING:
            self.state = BankState.IDLE
        elif self.state is BankState.REFRESHING:
            self.state = BankState.IDLE

    @property
    def has_open_row(self) -> bool:
        return self.open_row is not None and self.state in _OPEN_ROW_STATES

    @property
    def transient_until(self) -> int:
        """When the current transient state resolves (planner snapshot).

        Only meaningful for deciding when a closed bank becomes IDLE
        (precharging/refreshing); open-row transients resolve to ACTIVE,
        which the schedulers treat identically to their transient states.
        """
        return self._state_until

    @property
    def auto_precharge_pending(self) -> bool:
        """True while an RDA/WRA auto-precharge has not yet resolved.

        The burst-train planner refuses to plan over banks in this state:
        a pending auto-precharge is the one transition that can close a
        row purely by time passing, which would invalidate the planner's
        static row-hit classification.
        """
        return self._auto_precharge_at is not None

    def is_row_hit(self, row: int) -> bool:
        """True when ``row`` is already open in the row buffer."""
        return self.has_open_row and self.open_row == row

    # -------------------------------------------------------------- can_issue

    def can_issue(self, kind: CommandKind, now: int, row: Optional[int] = None) -> bool:
        """Check per-bank state and timing for issuing ``kind`` at ``now``.

        Cross-bank constraints (tRRD, tFAW, tCCD, bus turnaround) are checked
        by the pseudo channel, not here.
        """
        self.tick(now)
        if kind is CommandKind.ACT:
            return self.state is BankState.IDLE and now >= self.next_act
        if kind in (CommandKind.RD, CommandKind.RDA):
            return (
                self.has_open_row
                and (row is None or self.open_row == row)
                and now >= self.next_read
            )
        if kind in (CommandKind.WR, CommandKind.WRA):
            return (
                self.has_open_row
                and (row is None or self.open_row == row)
                and now >= self.next_write
            )
        if kind in (CommandKind.PRE, CommandKind.PREA):
            if self.state is BankState.IDLE:
                return now >= self.next_act  # precharging an idle bank is a no-op
            return self.state in _OPEN_ROW_STATES and now >= self.next_pre
        if kind is CommandKind.REFPB:
            return self.state is BankState.IDLE and now >= max(
                self.next_act, self.next_refresh
            )
        raise ValueError(f"Bank cannot accept command kind {kind}")

    # ------------------------------------------------------------------ issue

    def issue(self, kind: CommandKind, now: int, row: Optional[int] = None) -> None:
        """Apply the state/timing effects of issuing ``kind`` at ``now``.

        Callers are expected to have validated the command via
        :meth:`can_issue`; a ``RuntimeError`` is raised otherwise so that
        scheduler bugs surface immediately.
        """
        if not self.can_issue(kind, now, row):
            raise RuntimeError(
                f"illegal {kind.value} to bg{self.bank_group}.ba{self.bank_id} "
                f"at t={now} (state={self.state.value})"
            )
        t = self.timing
        if kind is CommandKind.ACT:
            assert row is not None, "ACT requires a row"
            self.open_row = row
            self.state = BankState.ACTIVATING
            self._state_until = now + t.tRCDRD
            self.next_read = max(self.next_read, now + t.tRCDRD)
            self.next_write = max(self.next_write, now + t.tRCDWR)
            self.next_pre = max(self.next_pre, now + t.tRAS)
            self.next_act = max(self.next_act, now + t.tRC)
            self.counters.activates += 1
        elif kind in (CommandKind.RD, CommandKind.RDA):
            self.state = BankState.READING
            self._state_until = now + t.tCL + t.burst_ns
            self.next_pre = max(self.next_pre,
                                column_precharge_ready(t, True, now))
            self.counters.reads += 1
            if kind is CommandKind.RDA:
                self._auto_precharge_at = max(self.next_pre, now + t.tRTP)
        elif kind in (CommandKind.WR, CommandKind.WRA):
            self.state = BankState.WRITING
            self._state_until = now + t.tCWL + t.burst_ns
            self.next_pre = max(self.next_pre,
                                column_precharge_ready(t, False, now))
            self.counters.writes += 1
            if kind is CommandKind.WRA:
                self._auto_precharge_at = now + t.tCWL + t.burst_ns + t.tWR
        elif kind in (CommandKind.PRE, CommandKind.PREA):
            if self.state is BankState.IDLE:
                return  # no-op precharge
            self.open_row = None
            self.state = BankState.PRECHARGING
            self._state_until = now + t.tRP
            self.next_act = max(self.next_act, now + t.tRP)
            self.counters.precharges += 1
        elif kind is CommandKind.REFPB:
            self.state = BankState.REFRESHING
            self._state_until = now + t.tRFCpb
            self.next_act = max(self.next_act, now + t.tRFCpb)
            self.next_refresh = max(self.next_refresh, now + t.tREFIpb)
            self.counters.refreshes += 1
        else:
            raise ValueError(f"Bank cannot accept command kind {kind}")

    def next_event_ns(self, now: int) -> Optional[int]:
        """Earliest stored timestamp after ``now`` at which this bank's
        issueability can change (timing-window expiry, transient-state
        resolution, or a pending auto-precharge and its completion).

        A superset of the truly relevant instants is fine -- callers treat the
        result as a conservative wake-up bound for event-driven scheduling.
        """
        candidates = [
            self.next_act, self.next_read, self.next_write, self.next_pre,
            self.next_refresh, self._state_until,
        ]
        if self._auto_precharge_at is not None:
            candidates.append(self._auto_precharge_at)
            candidates.append(self._auto_precharge_at + self.timing.tRP)
        best: Optional[int] = None
        for candidate in candidates:
            if candidate > now and (best is None or candidate < best):
                best = candidate
        return best

    def earliest_issue(self, kind: CommandKind) -> int:
        """Lower bound on when ``kind`` could be issued (ignoring state)."""
        if kind is CommandKind.ACT:
            return self.next_act
        if kind in (CommandKind.RD, CommandKind.RDA):
            return self.next_read
        if kind in (CommandKind.WR, CommandKind.WRA):
            return self.next_write
        if kind in (CommandKind.PRE, CommandKind.PREA):
            return self.next_pre
        if kind is CommandKind.REFPB:
            return max(self.next_act, self.next_refresh)
        raise ValueError(f"Bank cannot accept command kind {kind}")

    def record_row_hit(self) -> None:
        self.counters.row_hits += 1

    def record_row_miss(self) -> None:
        self.counters.row_misses += 1
