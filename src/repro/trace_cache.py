"""Memoization cache for trace setup (ROADMAP: "trace caching").

Sweeps re-run many simulation points over the same traces, and the two
expensive pieces of trace setup are pure functions of their inputs:

* :func:`repro.controller.request.decompose` -- the address-mapping
  decode of a host request into per-block DRAM coordinates, keyed by
  ``(mapping, address, size_bytes)``;
* :func:`repro.core.interface.requests_for_transfer` -- the striping of a
  bulk transfer into row-request specs, keyed by the full argument tuple.

Both producers cache only the *derivable, immutable* part of their output
(coordinate tuples / request spec tuples) and rebuild the mutable queue
objects (:class:`~repro.controller.request.Transaction`,
:class:`~repro.core.interface.RowRequest`) on every call, so cached and
uncached calls are observably identical apart from wall-clock time.

A process-global :class:`TraceCache` instance serves both call sites; the
sweep runner (:mod:`repro.sim.sweep`) snapshots its hit/miss counters
around each sweep point and aggregates them -- including across worker
processes -- into :class:`~repro.sim.sweep.SweepStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, List, Optional, Tuple


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of a cache's hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated after the ``since`` snapshot was taken."""
        return CacheStats(hits=self.hits - since.hits,
                          misses=self.misses - since.misses)

    def merge(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses)


class TraceCache:
    """A bounded LRU memoization cache with hit/miss accounting.

    Values must be treated as immutable by callers: the cache hands the
    same object back on every hit.  Producers that need mutable results
    cache an immutable *spec* and rebuild fresh objects from it per call.

    ``max_entries`` bounds memory; the least recently used entry is
    evicted first.  Exceptions raised by ``compute`` propagate and leave
    the cache unchanged (failures are never cached).
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._journal: Optional[List[Tuple[Hashable, Any]]] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            value = compute()
            self._entries[key] = value
            if self._journal is not None:
                self._journal.append((key, value))
            if len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return value
        self._hits += 1
        self._entries.move_to_end(key)
        return value

    def stats(self) -> CacheStats:
        return CacheStats(hits=self._hits, misses=self._misses)

    # ------------------------------------------------- cross-process warmth

    def start_journal(self) -> None:
        """Begin recording entries added by subsequent misses.

        The sweep runner journals inside worker processes so freshly
        derived entries can be shipped back and :meth:`install`-ed into
        the parent's cache -- otherwise warmth accrued in a worker would
        die with its pool.
        """
        self._journal = []

    def take_journal(self) -> List[Tuple[Hashable, Any]]:
        """Stop journaling and return the recorded ``(key, value)`` pairs."""
        journal = self._journal or []
        self._journal = None
        return journal

    def export_entries(self) -> List[Tuple[Hashable, Any]]:
        """All ``(key, value)`` pairs, oldest first (for seeding workers).

        The sweep runner passes these to each pool worker's initializer so
        parent-side warmth reaches workers even under ``spawn``/
        ``forkserver`` start methods, where nothing is inherited.
        """
        return list(self._entries.items())

    def install(self, entries: List[Tuple[Hashable, Any]]) -> None:
        """Adopt entries journaled elsewhere (no effect on hit/miss counts).

        Already-present keys are left untouched so installing a worker's
        journal never reorders or replaces what the parent derived itself.
        """
        for key, value in entries:
            if key not in self._entries:
                self._entries[key] = value
                if len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries, reset the counters, and discard any journal."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._journal = None


#: Process-global cache shared by the trace-setup call sites.  Worker
#: processes forked by the sweep runner inherit the parent's warm entries
#: and report their own counter deltas back to the parent.
_GLOBAL_CACHE = TraceCache()


def global_trace_cache() -> TraceCache:
    """The process-global trace-setup cache."""
    return _GLOBAL_CACHE


def trace_cache_stats() -> CacheStats:
    """Snapshot of the global cache's hit/miss counters."""
    return _GLOBAL_CACHE.stats()


def reset_trace_cache() -> None:
    """Clear the global cache (used by tests and cold-run benchmarks)."""
    _GLOBAL_CACHE.clear()
