"""Seeded, counter-based device-fault model (Section VII, exercised).

Every draw is a pure function of ``(seed, fault kind, address, time)``
hashed through BLAKE2b -- there is *no mutable RNG state*.  That is the
same determinism discipline as the arrival processes and the sweep
runner: the model hands out bit-identical faults whether a workload runs
in-process, under ``workers=2``, or under the ``spawn`` start method,
and a checkpointed run resumed mid-campaign re-draws exactly the faults
it would have seen uninterrupted (the model itself pickles trivially --
it is just its config).

Three fault populations are drawn, one per
:class:`~repro.reliability.taxonomy.DeviceFaultKind` family:

* **transient** -- soft bit flips, Poisson over the codeword with mean
  ``transient_ber * codeword_bits`` per read;
* **retention** -- leaked cells, same shape but with the mean scaled by
  *time since the owning bank was refreshed or the row scrubbed*,
  saturating at one retention window (this is what makes scrubbing and
  refresh matter to reliability, not just to timing);
* **hard** -- sticky row/bank defects drawn from ``(seed, address)``
  only, so a bad row is bad on *every* read at *every* time until the
  RAS layer spares it.  A hard read is modeled as producing exactly the
  code's detection capability in faulty bits, i.e. a deterministic DUE:
  the optimistic-detection assumption that makes the retry -> spare ->
  offline ladder exercisable.  Silent corruption (SDC) instead comes
  from the soft-error tail exceeding the detection guarantee.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Tuple

from repro.reliability.taxonomy import DeviceFaultKind

__all__ = ["ReliabilityConfig", "FaultDraw", "DeviceFaultModel"]

#: Cap on the Poisson inversion loop; a mean large enough to hit this is
#: far beyond anything ECC distinguishes (everything above detect_bits
#: classifies identically), so truncation never changes an outcome class.
_MAX_POISSON = 64


@dataclass(frozen=True)
class ReliabilityConfig:
    """Frozen, picklable knob block for the fault model and RAS engine.

    Rates are per-bit-per-read probabilities (bit error rates); the
    model multiplies by the codeword size, so the same rate stresses a
    4 KB RoMe codeword ~128x harder than a 32 B baseline codeword --
    which is the point: the larger codeword must carry a stronger code.
    ``active`` is False when every rate is zero; inactive configs take
    the exact pre-reliability code paths, so zero-rate runs stay
    bit-identical to runs with no config at all (bench-smoke gates it).
    """

    seed: int = 0
    #: Soft-error bit flip probability per bit per read.
    transient_ber: float = 0.0
    #: Retention bit-error probability per bit per read *at a full
    #: retention window since refresh*; scales down linearly with the
    #: actual time since refresh/scrub.
    retention_ber: float = 0.0
    #: Time over which retention errors saturate (one tREFW, roughly).
    retention_window_ns: int = 32_000_000
    #: Probability that any given row is a sticky hard fault.
    hard_row_rate: float = 0.0
    #: Probability that a whole bank is weak (every row acts hard).
    hard_bank_rate: float = 0.0
    #: ECC scheme name from :data:`repro.core.ecc.ECC_SCHEMES`; the
    #: codeword size comes from the controller's access granularity.
    ecc_scheme: str = "secded"
    #: Retry-on-DUE budget per read (command replay in simulated time).
    max_retries: int = 2
    #: Linear backoff between replays: attempt ``n`` waits ``n * backoff``.
    retry_backoff_ns: int = 50
    #: Patrol-scrub period; 0 disables scrubbing.
    scrub_interval_ns: int = 0
    #: PPR-style spare-row budget per bank.
    spare_rows_per_bank: int = 4
    #: Rows needing a spare in one bank before it is offlined (0 = never).
    offline_after_row_failures: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_ber", "retention_ber",
                     "hard_row_rate", "hard_bank_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")
        if self.retention_window_ns <= 0:
            raise ValueError("retention_window_ns must be positive")
        if self.max_retries < 0 or self.retry_backoff_ns < 0:
            raise ValueError("retry budget and backoff must be non-negative")
        if (self.scrub_interval_ns < 0 or self.spare_rows_per_bank < 0
                or self.offline_after_row_failures < 0):
            raise ValueError("scrub/spare/offline knobs must be non-negative")
        # Fail fast on a typoed scheme name instead of at first read.
        from repro.core import ecc

        if self.ecc_scheme not in ecc.ECC_SCHEMES:
            raise ValueError(
                f"unknown ECC scheme {self.ecc_scheme!r}; "
                f"expected one of {sorted(ecc.ECC_SCHEMES)}"
            )

    @property
    def active(self) -> bool:
        """Whether any fault can ever be drawn.

        Inactive configs short-circuit every hook, keeping zero-rate
        runs on the exact baseline code path (fast paths included).
        """
        return (self.transient_ber > 0.0 or self.retention_ber > 0.0
                or self.hard_row_rate > 0.0 or self.hard_bank_rate > 0.0)


@dataclass(frozen=True)
class FaultDraw:
    """The faults one read (or scrub) of one row observed."""

    transient_bits: int = 0
    retention_bits: int = 0
    hard: bool = False

    @property
    def soft_bits(self) -> int:
        return self.transient_bits + self.retention_bits


class DeviceFaultModel:
    """Stateless fault source; all state lives in the frozen config."""

    def __init__(self, config: ReliabilityConfig) -> None:
        self.config = config

    # ------------------------------------------------------------- PRNG
    def _uniform(self, kind: str, *key: object) -> float:
        """Deterministic uniform in [0, 1) from ``(seed, kind, key)``.

        ``repr`` of small int/str tuples is platform- and
        version-stable, and BLAKE2b is part of hashlib everywhere this
        runs, so equal keys give equal draws on any worker.
        """
        payload = repr((self.config.seed, kind, key)).encode("ascii")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2.0 ** 64

    def _poisson(self, mean: float, kind: str, *key: object) -> int:
        """Inverse-CDF Poisson draw from a single uniform."""
        if mean <= 0.0:
            return 0
        u = self._uniform(kind, *key)
        pmf = math.exp(-mean)
        cdf = pmf
        k = 0
        while u >= cdf and k < _MAX_POISSON:
            k += 1
            pmf *= mean / k
            cdf += pmf
        return k

    # ----------------------------------------------------- fault draws
    def bank_is_weak(self, bank: Tuple[object, ...]) -> bool:
        """Sticky whole-bank defect: time-independent draw per bank."""
        rate = self.config.hard_bank_rate
        return rate > 0.0 and self._uniform(
            DeviceFaultKind.HARD_BANK.value, *bank) < rate

    def row_is_hard(self, bank: Tuple[object, ...], row: int) -> bool:
        """Sticky row defect (true also for every row of a weak bank)."""
        rate = self.config.hard_row_rate
        if rate > 0.0 and self._uniform(
                DeviceFaultKind.HARD_ROW.value, *bank, row) < rate:
            return True
        return self.bank_is_weak(bank)

    def draw(self, bank: Tuple[object, ...], row: int, now_ns: int,
             since_refresh_ns: int, codeword_bits: int,
             skip_hard: bool = False) -> FaultDraw:
        """Faults observed reading ``row`` of ``bank`` at ``now_ns``.

        ``since_refresh_ns`` is the owning bank's time since refresh (or
        the row's time since scrub, whichever is more recent);
        ``skip_hard`` models a spared row -- the replacement row is
        healthy, but soft errors still strike it like any other row.
        """
        cfg = self.config
        transient = self._poisson(
            cfg.transient_ber * codeword_bits,
            DeviceFaultKind.TRANSIENT.value, *bank, row, now_ns)
        window = cfg.retention_window_ns
        fraction = min(max(since_refresh_ns, 0), window) / window
        retention = self._poisson(
            cfg.retention_ber * codeword_bits * fraction,
            DeviceFaultKind.RETENTION.value, *bank, row, now_ns)
        hard = False if skip_hard else self.row_is_hard(bank, row)
        return FaultDraw(transient_bits=transient,
                         retention_bits=retention, hard=hard)
