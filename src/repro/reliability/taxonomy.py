"""One fault taxonomy for the whole tree.

Two layers of this codebase inject faults, and before this module they
named their fault kinds with unrelated ad-hoc strings:

* the **harness** layer (:mod:`repro.sim.sweep`) perturbs *worker
  processes* -- kill a child, delay it past its deadline, or raise inside
  it -- to prove the sweep runner's retry/quarantine/journal machinery;
* the **device** layer (:mod:`repro.reliability.faults`) perturbs the
  *simulated memory* -- transient bit flips, retention decay, sticky
  hard faults -- to exercise ECC and the RAS response path.

Both enums subclass :class:`str` so members compare, pickle, sort, and
JSON-encode exactly like the plain strings they replace
(``HarnessFaultKind.KILL == "kill"`` is ``True``), keeping journals and
failure records from older runs readable.
"""

from __future__ import annotations

import enum

__all__ = ["HarnessFaultKind", "DeviceFaultKind"]


class HarnessFaultKind(str, enum.Enum):
    """Faults injected into sweep *worker processes* by a ``FaultPlan``.

    ``RAISE`` raises :class:`repro.sim.sweep.InjectedFault` inside the
    worker, ``KILL`` hard-crashes the child via ``os._exit``, and
    ``DELAY`` sleeps the worker so per-point timeouts trip.
    """

    RAISE = "raise"
    KILL = "kill"
    DELAY = "delay"

    def __str__(self) -> str:  # keep f-strings/repr-in-messages tidy
        return self.value


class DeviceFaultKind(str, enum.Enum):
    """Faults drawn by the simulated memory device itself.

    ``TRANSIENT`` is a per-read soft bit flip (particle strike / signal
    noise); ``RETENTION`` is a leaked cell whose probability scales with
    time since the owning bank was last refreshed or scrubbed;
    ``HARD_ROW`` is a sticky defect that corrupts one row on every read
    until the row is spared; ``HARD_BANK`` marks a whole weak bank whose
    rows all behave like ``HARD_ROW`` (the graceful-degradation ladder's
    offline trigger).
    """

    TRANSIENT = "transient"
    RETENTION = "retention"
    HARD_ROW = "hard_row"
    HARD_BANK = "hard_bank"

    def __str__(self) -> str:
        return self.value
