"""One fault taxonomy for the whole tree.

Two layers of this codebase inject faults, and before this module they
named their fault kinds with unrelated ad-hoc strings:

* the **harness** layer (:mod:`repro.sim.sweep`) perturbs *worker
  processes* -- kill a child, delay it past its deadline, or raise inside
  it -- to prove the sweep runner's retry/quarantine/journal machinery;
* the **device** layer (:mod:`repro.reliability.faults`) perturbs the
  *simulated memory* -- transient bit flips, retention decay, sticky
  hard faults -- to exercise ECC and the RAS response path;
* the **fleet** layer (:mod:`repro.fleet.health`) perturbs whole
  *serving replicas* -- sustained device-fault pressure degrades one,
  a hard failure takes it down, a timed repair brings it back -- to
  exercise the router's failover/hedging/shedding machinery.

All enums subclass :class:`str` so members compare, pickle, sort, and
JSON-encode exactly like the plain strings they replace
(``HarnessFaultKind.KILL == "kill"`` is ``True``), keeping journals and
failure records from older runs readable.
"""

from __future__ import annotations

import enum

__all__ = ["HarnessFaultKind", "DeviceFaultKind", "ReplicaFaultKind"]


class HarnessFaultKind(str, enum.Enum):
    """Faults injected into sweep *worker processes* by a ``FaultPlan``.

    ``RAISE`` raises :class:`repro.sim.sweep.InjectedFault` inside the
    worker, ``KILL`` hard-crashes the child via ``os._exit``, and
    ``DELAY`` sleeps the worker so per-point timeouts trip.
    """

    RAISE = "raise"
    KILL = "kill"
    DELAY = "delay"

    def __str__(self) -> str:  # keep f-strings/repr-in-messages tidy
        return self.value


class DeviceFaultKind(str, enum.Enum):
    """Faults drawn by the simulated memory device itself.

    ``TRANSIENT`` is a per-read soft bit flip (particle strike / signal
    noise); ``RETENTION`` is a leaked cell whose probability scales with
    time since the owning bank was last refreshed or scrubbed;
    ``HARD_ROW`` is a sticky defect that corrupts one row on every read
    until the row is spared; ``HARD_BANK`` marks a whole weak bank whose
    rows all behave like ``HARD_ROW`` (the graceful-degradation ladder's
    offline trigger).
    """

    TRANSIENT = "transient"
    RETENTION = "retention"
    HARD_ROW = "hard_row"
    HARD_BANK = "hard_bank"

    def __str__(self) -> str:
        return self.value


class ReplicaFaultKind(str, enum.Enum):
    """Health *transitions* of one serving replica in a fleet.

    The replica-fault process escalates the :class:`DeviceFaultKind`
    populations to replica granularity: sustained DUE/SDC pressure or
    enough offlined banks inside one health window emits ``DEGRADED``
    (the replica still serves, slower and hedge-worthy), a hard-failure
    draw emits ``DOWN`` (in-flight requests are lost and the router must
    fail over), and a timed repair emits ``RECOVERED`` (back to healthy
    with fault counters reset).  These are transitions, not states --
    :class:`repro.fleet.health.ReplicaHealth` is the state view a router
    queries.
    """

    DEGRADED = "degraded"
    DOWN = "down"
    RECOVERED = "recovered"

    def __str__(self) -> str:
        return self.value
