"""Device-fault modeling and RAS (reliability / availability / service).

See :mod:`repro.reliability.taxonomy` for the shared fault taxonomy,
:mod:`repro.reliability.faults` for the seeded counter-based device
fault model, and :mod:`repro.reliability.ras` for ECC classification and
the retry / scrub / spare / offline response ladder the controllers run.
"""

from repro.reliability.faults import (
    DeviceFaultModel,
    FaultDraw,
    ReliabilityConfig,
)
from repro.reliability.ras import RasEngine, ReadVerdict, ReliabilityStats
from repro.reliability.taxonomy import (
    DeviceFaultKind,
    HarnessFaultKind,
    ReplicaFaultKind,
)

__all__ = [
    "DeviceFaultKind",
    "DeviceFaultModel",
    "FaultDraw",
    "HarnessFaultKind",
    "RasEngine",
    "ReadVerdict",
    "ReliabilityConfig",
    "ReliabilityStats",
    "ReplicaFaultKind",
]
