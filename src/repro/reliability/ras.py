"""ECC classification and the RAS response ladder for both controllers.

The :class:`RasEngine` sits beside a memory controller and sees every
read at its issue instant.  Each read draws faults from the seeded
:class:`~repro.reliability.faults.DeviceFaultModel`, is classified
through the :class:`~repro.core.ecc.EccCapability` codeword math
(*the same function the property tests pin*), and then walks the
degradation ladder:

1. **corrected** -- the code repaired the data; count it and move on.
2. **retry-on-DUE** -- a detected-uncorrectable read is replayed in
   simulated time with linear backoff, up to ``max_retries`` times
   (transient and retention faults re-draw at the later instant, so
   replays genuinely can succeed).
3. **row sparing** -- a read still failing after its retry budget burns
   a PPR-style spare row from the bank's budget; the spared row skips
   the sticky hard-fault draw from then on and one final replay targets
   the (healthy) spare.
4. **bank offline** -- a bank accumulating ``offline_after_row_failures``
   spared/failed rows is removed from service; *new* requests aiming at
   it are deterministically re-striped across the remaining healthy
   banks (in-flight traffic drains where it is -- that is the graceful
   part of the degradation).

Patrol scrubbing interleaves with normal traffic on a fixed simulated
period: each pass rewrites one previously-touched row (round-robin),
clearing its retention clock and proactively sparing sticky rows it
finds, before they cost demand reads their retry budgets.

Everything here is plain picklable state (dicts/sets/ints -- hashes are
recomputed per draw, never stored), so checkpoint/restore of a
controller mid-campaign stays bit-identical.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.ecc import EccCapability, EccOutcome, capability_for
from repro.reliability.faults import DeviceFaultModel, ReliabilityConfig

__all__ = ["RasEngine", "ReadVerdict", "ReliabilityStats"]

BankKey = Tuple[object, ...]


@dataclass
class ReliabilityStats:
    """Outcome counters threaded into results as the ``reliability`` block.

    Plain ints with dataclass equality, so campaign determinism is
    asserted with ``==`` like every other result in this tree.
    """

    reads_checked: int = 0
    transient_bits: int = 0
    retention_bits: int = 0
    hard_fault_reads: int = 0
    corrected: int = 0
    detected_uncorrectable: int = 0
    silent_miscorrects: int = 0
    retries_scheduled: int = 0
    recovered_reads: int = 0
    unrecoverable_reads: int = 0
    scrub_passes: int = 0
    scrub_corrected_bits: int = 0
    scrub_detected_hard: int = 0
    spared_rows: int = 0
    offlined_banks: int = 0
    remapped_requests: int = 0

    @property
    def sdc_rate(self) -> float:
        """Silent miscorrects per checked read (0.0 when nothing read)."""
        if self.reads_checked == 0:
            return 0.0
        return self.silent_miscorrects / self.reads_checked

    @property
    def due_rate(self) -> float:
        if self.reads_checked == 0:
            return 0.0
        return self.detected_uncorrectable / self.reads_checked

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)

    @classmethod
    def merged(cls, parts: Iterable["ReliabilityStats"]
               ) -> Optional["ReliabilityStats"]:
        """Field-wise sum across controllers; ``None`` for no parts."""
        parts = list(parts)
        if not parts:
            return None
        total = cls()
        for part in parts:
            for spec in fields(cls):
                setattr(total, spec.name,
                        getattr(total, spec.name) + getattr(part, spec.name))
        return total


@dataclass(frozen=True)
class ReadVerdict:
    """What the RAS engine decided about one read.

    ``retry_delay_ns`` is non-None when the controller should replay the
    read that many simulated nanoseconds after its data returns;
    ``spared_now`` flags that this verdict consumed a spare row.
    """

    outcome: EccOutcome
    faulty_bits: int
    retry_delay_ns: Optional[int] = None
    spared_now: bool = False


class RasEngine:
    """Per-controller reliability pipeline (fault draws -> ECC -> RAS)."""

    def __init__(self, config: ReliabilityConfig, codeword_data_bytes: int,
                 banks: Sequence[BankKey]) -> None:
        if not banks:
            raise ValueError("RasEngine needs at least one bank")
        self.config = config
        self.model = DeviceFaultModel(config)
        self.capability: EccCapability = capability_for(
            config.ecc_scheme, codeword_data_bytes)
        #: Inactive engines must never be consulted on the hot path; the
        #: controllers check this once and skip every hook when False.
        self.active: bool = config.active
        self.stats = ReliabilityStats()
        self._banks: Tuple[BankKey, ...] = tuple(banks)
        self._bank_index: Dict[BankKey, int] = {
            bank: i for i, bank in enumerate(self._banks)
        }
        self.offline: Set[BankKey] = set()
        self._healthy: Tuple[BankKey, ...] = self._banks
        self._last_refresh: Dict[BankKey, int] = {}
        self._last_scrub: Dict[Tuple[BankKey, int], int] = {}
        self._spared: Set[Tuple[BankKey, int]] = set()
        self._spares_used: Dict[BankKey, int] = {}
        self._row_failures: Dict[BankKey, int] = {}
        #: Insertion-ordered set of rows ever read; the patrol scrubber
        #: walks it round-robin (dict keys keep insertion order).
        self._known_rows: Dict[Tuple[BankKey, int], None] = {}
        self._scrub_cursor = 0
        interval = config.scrub_interval_ns
        self._next_scrub_ns: Optional[int] = (
            interval if self.active and interval > 0 else None
        )

    # --------------------------------------------------------- clocks
    def note_refresh(self, bank: BankKey, now_ns: int) -> None:
        """A refresh command reached ``bank``: reset its retention clock."""
        self._last_refresh[bank] = now_ns

    def _since_refresh(self, bank: BankKey, row: int, now_ns: int) -> int:
        anchor = max(self._last_refresh.get(bank, 0),
                     self._last_scrub.get((bank, row), 0))
        return now_ns - anchor

    # ---------------------------------------------------------- reads
    def on_read(self, bank: BankKey, row: int, now_ns: int,
                attempt: int = 0) -> ReadVerdict:
        """Classify one read issued at ``now_ns``; decide the RAS action.

        ``attempt`` counts replays of the same logical read (0 = the
        original demand access).
        """
        cfg = self.config
        stats = self.stats
        stats.reads_checked += 1
        key = (bank, row)
        if key not in self._known_rows:
            self._known_rows[key] = None
        spared = key in self._spared
        draw = self.model.draw(
            bank, row, now_ns, self._since_refresh(bank, row, now_ns),
            self.capability.scheme.codeword_bits, skip_hard=spared)
        stats.transient_bits += draw.transient_bits
        stats.retention_bits += draw.retention_bits
        if draw.hard:
            stats.hard_fault_reads += 1
            # A dead row returns garbage; model it as exactly the
            # detection capability (deterministic DUE) so the ladder is
            # exercisable -- or as silent corruption when there is no
            # code to notice (detect_bits == 0).
            faulty_bits = max(self.capability.detect_bits, 1)
        else:
            faulty_bits = draw.soft_bits
        outcome = self.capability.classify(faulty_bits)
        if outcome is EccOutcome.CORRECTED:
            stats.corrected += 1
        elif outcome is EccOutcome.DETECTED_UNCORRECTABLE:
            stats.detected_uncorrectable += 1
        elif outcome is EccOutcome.SILENT_MISCORRECT:
            stats.silent_miscorrects += 1
        if attempt > 0 and outcome in (EccOutcome.CLEAN,
                                       EccOutcome.CORRECTED):
            stats.recovered_reads += 1
        if outcome is not EccOutcome.DETECTED_UNCORRECTABLE:
            return ReadVerdict(outcome=outcome, faulty_bits=faulty_bits)

        # ---- DUE: retry, then spare, then give up (and maybe offline).
        if attempt < cfg.max_retries:
            stats.retries_scheduled += 1
            return ReadVerdict(
                outcome=outcome, faulty_bits=faulty_bits,
                retry_delay_ns=(attempt + 1) * cfg.retry_backoff_ns)
        spared_now = False
        if not spared and self._spare_row(bank, row):
            spared_now = True
            if attempt >= cfg.max_retries:
                # One final replay, now aimed at the healthy spare.
                stats.retries_scheduled += 1
                return ReadVerdict(
                    outcome=outcome, faulty_bits=faulty_bits,
                    retry_delay_ns=(attempt + 1) * cfg.retry_backoff_ns,
                    spared_now=True)
        stats.unrecoverable_reads += 1
        self._note_row_failure(bank)
        return ReadVerdict(outcome=outcome, faulty_bits=faulty_bits,
                           spared_now=spared_now)

    def _spare_row(self, bank: BankKey, row: int) -> bool:
        """Consume a spare for ``(bank, row)``; True if budget allowed."""
        used = self._spares_used.get(bank, 0)
        if used >= self.config.spare_rows_per_bank:
            return False
        self._spares_used[bank] = used + 1
        self._spared.add((bank, row))
        self.stats.spared_rows += 1
        self._note_row_failure(bank)
        return True

    def _note_row_failure(self, bank: BankKey) -> None:
        """Persistent-failure evidence feeding the offline ladder."""
        self._row_failures[bank] = self._row_failures.get(bank, 0) + 1
        threshold = self.config.offline_after_row_failures
        if (threshold > 0 and bank not in self.offline
                and self._row_failures[bank] >= threshold
                and len(self._healthy) > 1):
            self.offline.add(bank)
            self._healthy = tuple(
                b for b in self._banks if b not in self.offline)
            self.stats.offlined_banks += 1

    # --------------------------------------------------- re-striping
    def remap(self, bank: BankKey, row: int) -> BankKey:
        """Deterministic healthy target for traffic aimed at ``bank``.

        Pure function of the offline set and ``(bank, row)``: rows of an
        offline bank spread round-robin across the healthy banks, so
        re-striping is identical on every worker.
        """
        if bank not in self.offline:
            return bank
        healthy = self._healthy
        self.stats.remapped_requests += 1
        return healthy[(self._bank_index[bank] + row) % len(healthy)]

    # ------------------------------------------------------ scrubbing
    def next_event_ns(self, now_ns: int) -> Optional[int]:
        """Next instant the engine needs the controller to wake it."""
        return self._next_scrub_ns

    def run_scrub(self, now_ns: int) -> None:
        """Run every scrub pass scheduled at or before ``now_ns``.

        Draw keys use the pass's *scheduled* instant, so tick cores (which
        land exactly on it) and event cores (woken by
        :meth:`next_event_ns`) observe identical faults.
        """
        interval = self.config.scrub_interval_ns
        while self._next_scrub_ns is not None and self._next_scrub_ns <= now_ns:
            at_ns = self._next_scrub_ns
            self._next_scrub_ns = at_ns + interval
            if not self._known_rows:
                continue
            rows: List[Tuple[BankKey, int]] = list(self._known_rows)
            bank, row = rows[self._scrub_cursor % len(rows)]
            self._scrub_cursor += 1
            self._scrub_row(bank, row, at_ns)

    def _scrub_row(self, bank: BankKey, row: int, at_ns: int) -> None:
        stats = self.stats
        stats.scrub_passes += 1
        key = (bank, row)
        spared = key in self._spared
        draw = self.model.draw(
            bank, row, at_ns, self._since_refresh(bank, row, at_ns),
            self.capability.scheme.codeword_bits, skip_hard=spared)
        # The scrub read-corrects latent soft errors and rewrites the
        # row, resetting its retention clock.
        stats.scrub_corrected_bits += draw.soft_bits
        self._last_scrub[key] = at_ns
        if draw.hard:
            # Found a sticky row before demand traffic did: spare it
            # proactively (no data was lost -- the scrub read is
            # ECC-checked like any other and the row is still mostly
            # readable under the detection guarantee).
            stats.scrub_detected_hard += 1
            self._spare_row(bank, row)
